//! Browser-level integration tests: the full PKRU-Safe cycle on the
//! Servo stand-in.

use minijs::Value;
use servolite::{Browser, BrowserConfig, SECRET_ADDR};

const PAGE: &str = r#"
<div id="main" class="box">
  <h1>Title</h1>
  <p id="para">Hello <b>world</b></p>
  <ul id="list"><li>one</li><li>two</li><li>three</li></ul>
</div>
"#;

fn num(v: Value) -> f64 {
    match v {
        Value::Num(n) => n,
        other => panic!("expected number, got {other:?}"),
    }
}

#[test]
fn base_browser_loads_and_scripts_run() {
    let mut b = Browser::new(BrowserConfig::Base).unwrap();
    b.load_html(PAGE).unwrap();
    let v = b.eval_script("return 6 * 7;").unwrap();
    assert_eq!(num(v), 42.0);
}

#[test]
fn dom_natives_work_in_base_config() {
    let mut b = Browser::new(BrowserConfig::Base).unwrap();
    b.load_html(PAGE).unwrap();
    let v = b
        .eval_script(
            r#"
var list = document.getElementById('list');
var li = document.createElement('li');
li.setAttribute('id', 'new');
list.appendChild(li);
var t = document.createTextNode('four');
li.appendChild(t);
return list.childCount;
"#,
        )
        .unwrap();
    assert_eq!(num(v), 4.0);
    // The new node is findable and its text readable.
    let v = b.eval_script("return document.getElementById('new').innerText();").unwrap();
    assert!(matches!(v, Value::Str(ref s) if &**s == "four"));
}

#[test]
fn direct_field_access_reads_browser_memory() {
    let mut b = Browser::new(BrowserConfig::Base).unwrap();
    b.load_html(PAGE).unwrap();
    let v = b
        .eval_script(
            r#"
var p = document.getElementById('para');
return p.tagName + ':' + p.childCount + ':' + p.id;
"#,
        )
        .unwrap();
    assert!(matches!(v, Value::Str(ref s) if &**s == "p:2:para"), "{v:?}");
}

#[test]
fn node_indexing_walks_children() {
    let mut b = Browser::new(BrowserConfig::Base).unwrap();
    b.load_html(PAGE).unwrap();
    let v = b
        .eval_script(
            r#"
var list = document.getElementById('list');
var total = '';
for (var i = 0; i < list.childCount; i++) {
  total = total + list[i].innerText();
}
return total;
"#,
        )
        .unwrap();
    assert!(matches!(v, Value::Str(ref s) if &**s == "onetwothree"), "{v:?}");
}

#[test]
fn layout_computes_boxes() {
    let mut b = Browser::new(BrowserConfig::Base).unwrap();
    b.load_html(PAGE).unwrap();
    let v = b
        .eval_script(
            r#"
document.reflow();
var main = document.getElementById('main');
return main.height > 0 && main.width > 0 ? 1 : 0;
"#,
        )
        .unwrap();
    assert_eq!(num(v), 1.0);
}

#[test]
fn events_dispatch_through_compartments() {
    let mut b = Browser::new(BrowserConfig::Base).unwrap();
    b.load_html(PAGE).unwrap();
    let v = b
        .eval_script(
            r#"
var hits = 0;
var p = document.getElementById('para');
p.addEventListener('click', function(ev) { hits += ev.type == 'click' ? 1 : 0; });
p.addEventListener('click', function(ev) { hits += 10; });
p.dispatchEvent('click');
p.dispatchEvent('click');
return hits;
"#,
        )
        .unwrap();
    assert_eq!(num(v), 22.0);
}

#[test]
fn console_log_reaches_browser() {
    let mut b = Browser::new(BrowserConfig::Base).unwrap();
    b.load_html(PAGE).unwrap();
    b.eval_script("console.log('hello', 1 + 1);").unwrap();
    assert_eq!(b.console.borrow().as_slice(), &["hello 2".to_string()]);
}

#[test]
fn mpk_without_profile_crashes_on_dom_access() {
    // Experiment E1 step 1 at browser scale: no profile, so node records
    // stay in M_T, and the engine's first direct read faults.
    let mut b = Browser::new(BrowserConfig::Mpk).unwrap();
    b.load_html(PAGE).unwrap();
    let err = b.eval_script("return document.getElementById('para').childCount;").unwrap_err();
    assert!(err.is_pkey_violation(), "{err}");
}

#[test]
fn profiling_discovers_shared_sites_and_enforcement_works() {
    // Step 2: profile the browser with a benign corpus.
    let mut profiler = Browser::new(BrowserConfig::Profiling).unwrap();
    profiler.load_html(PAGE).unwrap();
    profiler
        .eval_script(
            r#"
var p = document.getElementById('para');
var s = p.tagName + p.id + p.className;
var list = document.getElementById('list');
for (var i = 0; i < list.childCount; i++) { s += list[i].innerText(); }
"#,
        )
        .unwrap();
    let profile = profiler.into_profile();
    assert!(!profile.is_empty());

    // Step 3: the enforcement build with the profile applied runs the same
    // workload without faults...
    let mut enforced = Browser::with_profile(BrowserConfig::Mpk, Some(&profile)).unwrap();
    enforced.load_html(PAGE).unwrap();
    let v = enforced
        .eval_script(
            r#"
var p = document.getElementById('para');
var list = document.getElementById('list');
var s = p.tagName;
for (var i = 0; i < list.childCount; i++) { s += list[i].innerText(); }
return s;
"#,
        )
        .unwrap();
    assert!(matches!(v, Value::Str(ref s) if &**s == "ponetwothree"), "{v:?}");
    let stats = enforced.stats();
    assert!(stats.transitions >= 2, "gated script must transition");
    assert!(stats.untrusted_allocs > 0, "shared sites now allocate from M_U");

    // ...and the census shows only some sites moved.
    let census = enforced.census();
    let shared = census.iter().filter(|(_, d, _)| *d == pkalloc::Domain::Untrusted).count();
    assert!(shared > 0 && shared < census.len(), "{shared}/{}", census.len());
}

#[test]
fn profiled_browser_still_blocks_untouched_sites() {
    // Profile only tag reads; text buffers of *text nodes* then stay
    // trusted... the corpus determines the partition.
    let mut profiler = Browser::new(BrowserConfig::Profiling).unwrap();
    profiler.load_html(PAGE).unwrap();
    profiler.eval_script("var p = document.getElementById('para'); var t = p.tagName;").unwrap();
    let profile = profiler.into_profile();

    let mut enforced = Browser::with_profile(BrowserConfig::Mpk, Some(&profile)).unwrap();
    enforced.load_html(PAGE).unwrap();
    // Tag reads work.
    enforced.eval_script("var p = document.getElementById('para'); return p.tagName;").unwrap();
    // The secret is never shared regardless of profile.
    let _ = enforced.eval_script(&format!("return debugAddrOf; // placeholder {SECRET_ADDR}"));
    assert_eq!(enforced.secret_value().unwrap(), 42.0);
}

#[test]
fn security_e3_exploit_blocked_only_under_mpk() {
    let exploit = format!(
        r#"
var a = [1.1, 2.2];
a.length = 1e15;
var base = debugAddrOf(a);
var idx = ({SECRET_ADDR} - base) / 8;
a[idx] = 1337;
return a[idx];
"#
    );

    // Vulnerable configuration (base): the write lands and the "logged"
    // secret is 1337.
    let mut base = Browser::new(BrowserConfig::Base).unwrap();
    base.load_html(PAGE).unwrap();
    assert_eq!(base.secret_value().unwrap(), 42.0);
    base.eval_script(&exploit).unwrap();
    assert_eq!(base.secret_value().unwrap(), 1337.0);

    // PKRU-Safe configuration: the same exploit dies on an MPK violation
    // and the secret survives.
    let profile = {
        let mut p = Browser::new(BrowserConfig::Profiling).unwrap();
        p.load_html(PAGE).unwrap();
        p.eval_script("var x = document.getElementById('para').tagName;").unwrap();
        p.into_profile()
    };
    let mut mpk = Browser::with_profile(BrowserConfig::Mpk, Some(&profile)).unwrap();
    mpk.load_html(PAGE).unwrap();
    let err = mpk.eval_script(&exploit).unwrap_err();
    assert!(err.is_pkey_violation(), "{err}");
    assert_eq!(mpk.secret_value().unwrap(), 42.0);
}

#[test]
fn alloc_config_splits_heap_without_gates() {
    let mut b = Browser::new(BrowserConfig::Alloc).unwrap();
    b.load_html(PAGE).unwrap();
    // No gates: direct field access works even though nodes are in M_T.
    let v = b.eval_script("return document.getElementById('para').tagName;").unwrap();
    assert!(matches!(v, Value::Str(ref s) if &**s == "p"));
    assert_eq!(b.stats().transitions, 0);
}

#[test]
fn stats_track_transitions_and_pools() {
    let profile = {
        let mut p = Browser::new(BrowserConfig::Profiling).unwrap();
        p.load_html(PAGE).unwrap();
        p.eval_script("document.getElementById('para').tagName;").unwrap();
        p.into_profile()
    };
    let mut b = Browser::with_profile(BrowserConfig::Mpk, Some(&profile)).unwrap();
    b.load_html(PAGE).unwrap();
    let before = b.stats().transitions;
    b.eval_script("var x = 0; for (var i = 0; i < 10; i++) x += i; return x;").unwrap();
    let after = b.stats().transitions;
    assert_eq!(after - before, 2, "one eval = enter + exit");
}
