//! DOM-layer tests: tree surgery, attributes, text, layout.

use minijs::Value;
use servolite::{Browser, BrowserConfig};

fn browser() -> Browser {
    let mut b = Browser::new(BrowserConfig::Base).unwrap();
    b.load_html(
        r#"
<div id="a">
  <p id="p1">one</p>
  <p id="p2">two</p>
  <p id="p3">three</p>
</div>
"#,
    )
    .unwrap();
    b
}

fn num(v: Value) -> f64 {
    match v {
        Value::Num(n) => n,
        other => panic!("expected number, got {other:?}"),
    }
}

#[test]
fn remove_child_relinks_siblings() {
    let mut b = browser();
    let v = b
        .eval_script(
            r#"
var a = document.getElementById('a');
var p2 = document.getElementById('p2');
a.removeChild(p2);
var order = '';
var c = a.firstChild;
while (c != null) { order += c.id; c = c.nextSibling; }
return order + ':' + a.childCount;
"#,
        )
        .unwrap();
    assert!(matches!(v, Value::Str(ref s) if &**s == "p1p3:2"), "{v:?}");
}

#[test]
fn append_detaches_from_previous_parent() {
    let mut b = browser();
    let v = b
        .eval_script(
            r#"
var a = document.getElementById('a');
var p1 = document.getElementById('p1');
var host = document.createElement('div');
a.appendChild(host);
host.appendChild(p1);           // Moves p1 under host.
return a.childCount * 10 + host.childCount;
"#,
        )
        .unwrap();
    assert_eq!(num(v), 31.0);
}

#[test]
fn attributes_overwrite_and_miss() {
    let mut b = browser();
    let v = b
        .eval_script(
            r#"
var p = document.getElementById('p1');
p.setAttribute('data-k', 'v1');
p.setAttribute('data-k', 'v2');
var hit = p.getAttribute('data-k');
var miss = p.getAttribute('nope');
return hit + ':' + (miss == null ? 'null' : miss);
"#,
        )
        .unwrap();
    assert!(matches!(v, Value::Str(ref s) if &**s == "v2:null"), "{v:?}");
}

#[test]
fn inner_html_replaces_subtree() {
    let mut b = browser();
    let v = b
        .eval_script(
            r#"
var a = document.getElementById('a');
a.setInnerHTML('<span id="s">new <b>world</b></span>');
return a.childCount + ':' + a.firstChild.id + ':' + a.innerText();
"#,
        )
        .unwrap();
    assert!(matches!(v, Value::Str(ref s) if &**s == "1:s:newworld"), "{v:?}"); // Whitespace collapses at text-run edges.
}

#[test]
fn layout_stacks_blocks_vertically() {
    let mut b = browser();
    let v = b
        .eval_script(
            r#"
document.reflow();
var p1 = document.getElementById('p1');
var p2 = document.getElementById('p2');
return p2.y > p1.y && p1.height > 0 ? 1 : 0;
"#,
        )
        .unwrap();
    assert_eq!(num(v), 1.0);
}

#[test]
fn get_elements_by_tag_name_document_order() {
    let mut b = browser();
    let v = b
        .eval_script(
            r#"
var ps = document.getElementsByTagName('p');
var order = '';
for (var i = 0; i < ps.length; i++) order += ps[i].id;
return order;
"#,
        )
        .unwrap();
    assert!(matches!(v, Value::Str(ref s) if &**s == "p1p2p3"), "{v:?}");
}

#[test]
fn direct_style_writes_visible_through_script_reads() {
    // Script writes the style word directly (host field) and reads it
    // back — a full round trip through browser memory.
    let mut b = browser();
    let v = b
        .eval_script(
            "document.getElementById('p1').style = 0xbeef;              return document.getElementById('p1').style;",
        )
        .unwrap();
    assert_eq!(num(v), 0xbeef as f64);
}
