//! Allocator errors.

use core::fmt;

use pkru_vmem::{MapError, VirtAddr};

/// Errors from the compartment allocators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocError {
    /// The pool's reserved region is exhausted.
    OutOfMemory,
    /// The pointer does not refer to a live allocation in any pool.
    InvalidPointer(VirtAddr),
    /// Zero-sized allocations are rejected; callers use dangling pointers
    /// for ZSTs exactly as Rust's `liballoc` does.
    ZeroSize,
    /// The underlying mapping operation failed.
    Map(MapError),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory => write!(f, "allocation pool exhausted"),
            AllocError::InvalidPointer(p) => write!(f, "not a live allocation: {p:#x}"),
            AllocError::ZeroSize => write!(f, "zero-sized allocation"),
            AllocError::Map(e) => write!(f, "mapping failure: {e}"),
        }
    }
}

impl std::error::Error for AllocError {}

impl From<MapError> for AllocError {
    fn from(e: MapError) -> AllocError {
        AllocError::Map(e)
    }
}
