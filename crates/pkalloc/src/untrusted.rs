//! The untrusted-pool allocator (the libc-`malloc` stand-in).

use std::collections::BTreeSet;

use pkru_vmem::{AddressSpace, Prot, VirtAddr};

use crate::error::AllocError;

/// Chunk header/footer size in bytes.
const TAG: u64 = 8;
/// Minimum whole-chunk size: header + footer + 16-byte payload.
const MIN_CHUNK: u64 = 32;
/// Bit 0 of a boundary tag marks the chunk in use.
const INUSE: u64 = 1;

/// Heap statistics for the evaluation.
#[derive(Clone, Copy, Debug, Default)]
pub struct HeapStats {
    /// Payload bytes currently live.
    pub live_bytes: u64,
    /// Total successful allocations.
    pub allocs: u64,
    /// Total frees.
    pub frees: u64,
    /// Bytes carved from the wilderness so far.
    pub wilderness_used: u64,
}

/// A boundary-tag, best-fit, coalescing free-list allocator for `M_U`.
///
/// Chunk layout is the classic dlmalloc shape: an 8-byte header and an
/// 8-byte footer carrying `size | INUSE` bracket each payload. The tags
/// live *inside the simulated untrusted memory* — faithfully to libc
/// `malloc`, a compromised untrusted compartment can corrupt its own heap
/// metadata, but never the trusted pool, which has no metadata here at all.
pub struct UntrustedHeap {
    base: VirtAddr,
    span: u64,
    wilderness: VirtAddr,
    /// Free chunks ordered by (chunk size, address) for best-fit search.
    free: BTreeSet<(u64, VirtAddr)>,
    stats: HeapStats,
}

impl UntrustedHeap {
    /// Maps `[base, base + span)` with the default protection key and
    /// returns the heap managing it.
    pub fn new(
        space: &mut AddressSpace,
        base: VirtAddr,
        span: u64,
    ) -> Result<UntrustedHeap, AllocError> {
        space.mmap_at(base, span, Prot::READ_WRITE)?;
        Ok(UntrustedHeap {
            base,
            span,
            wilderness: base,
            free: BTreeSet::new(),
            stats: HeapStats::default(),
        })
    }

    /// Whether `addr` falls inside this heap's reservation.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr >= self.base && addr < self.base + self.span
    }

    /// Current statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    fn chunk_size_needed(size: u64) -> u64 {
        let payload = size.max(16).div_ceil(16) * 16;
        (payload + 2 * TAG).max(MIN_CHUNK)
    }

    fn read_tag(space: &mut AddressSpace, addr: VirtAddr) -> u64 {
        let mut b = [0u8; 8];
        // The allocator validated this range when it wrote the tag.
        space.read_supervisor(addr, &mut b).expect("allocator tag mapped");
        u64::from_le_bytes(b)
    }

    fn write_tags(space: &mut AddressSpace, chunk: VirtAddr, size: u64, in_use: bool) {
        let tag = size | if in_use { INUSE } else { 0 };
        space.write_supervisor(chunk, &tag.to_le_bytes()).expect("allocator tag mapped");
        space
            .write_supervisor(chunk + size - TAG, &tag.to_le_bytes())
            .expect("allocator tag mapped");
    }

    /// Allocates `size` bytes (16-byte aligned payload).
    pub fn alloc(&mut self, space: &mut AddressSpace, size: u64) -> Result<VirtAddr, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        let need = Self::chunk_size_needed(size);
        // Best fit: smallest free chunk that can hold the request.
        let found = self.free.range((need, 0)..).next().copied();
        let chunk = match found {
            Some(entry @ (chunk_size, chunk)) => {
                self.free.remove(&entry);
                if chunk_size - need >= MIN_CHUNK {
                    // Split: the tail becomes a new free chunk.
                    let rest = chunk + need;
                    let rest_size = chunk_size - need;
                    Self::write_tags(space, rest, rest_size, false);
                    self.free.insert((rest_size, rest));
                    Self::write_tags(space, chunk, need, true);
                } else {
                    Self::write_tags(space, chunk, chunk_size, true);
                }
                chunk
            }
            None => {
                let chunk = self.wilderness;
                let end = chunk.checked_add(need).ok_or(AllocError::OutOfMemory)?;
                if end > self.base + self.span {
                    return Err(AllocError::OutOfMemory);
                }
                self.wilderness = end;
                self.stats.wilderness_used += need;
                Self::write_tags(space, chunk, need, true);
                chunk
            }
        };
        self.stats.allocs += 1;
        self.stats.live_bytes += self.payload_size_at(space, chunk);
        Ok(chunk + TAG)
    }

    fn payload_size_at(&self, space: &mut AddressSpace, chunk: VirtAddr) -> u64 {
        (Self::read_tag(space, chunk) & !INUSE) - 2 * TAG
    }

    /// Frees the object at `ptr`, coalescing with free neighbors.
    pub fn dealloc(&mut self, space: &mut AddressSpace, ptr: VirtAddr) -> Result<(), AllocError> {
        let mut chunk = ptr.checked_sub(TAG).ok_or(AllocError::InvalidPointer(ptr))?;
        if !self.contains(chunk) || chunk >= self.wilderness {
            return Err(AllocError::InvalidPointer(ptr));
        }
        let tag = Self::read_tag(space, chunk);
        if tag & INUSE == 0 {
            return Err(AllocError::InvalidPointer(ptr));
        }
        let mut size = tag & !INUSE;
        self.stats.frees += 1;
        self.stats.live_bytes -= size - 2 * TAG;

        // Coalesce backward.
        if chunk > self.base {
            let prev_tag = Self::read_tag(space, chunk - TAG);
            if prev_tag != 0 && prev_tag & INUSE == 0 {
                let prev_size = prev_tag & !INUSE;
                let prev = chunk - prev_size;
                if self.free.remove(&(prev_size, prev)) {
                    chunk = prev;
                    size += prev_size;
                }
            }
        }
        // Coalesce forward.
        let next = chunk + size;
        if next < self.wilderness {
            let next_tag = Self::read_tag(space, next);
            if next_tag != 0 && next_tag & INUSE == 0 {
                let next_size = next_tag & !INUSE;
                if self.free.remove(&(next_size, next)) {
                    size += next_size;
                }
            }
        }
        Self::write_tags(space, chunk, size, false);
        self.free.insert((size, chunk));
        Ok(())
    }

    /// Usable payload size of the live object at `ptr`.
    pub fn usable_size(&self, space: &mut AddressSpace, ptr: VirtAddr) -> Option<u64> {
        let chunk = ptr.checked_sub(TAG)?;
        if !self.contains(chunk) || chunk >= self.wilderness {
            return None;
        }
        let tag = Self::read_tag(space, chunk);
        (tag & INUSE == INUSE).then(|| (tag & !INUSE) - 2 * TAG)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UNTRUSTED_BASE;
    use pkru_mpk::{Pkey, Pkru};

    fn heap() -> (AddressSpace, UntrustedHeap) {
        let mut space = AddressSpace::new();
        let heap = UntrustedHeap::new(&mut space, UNTRUSTED_BASE, 1 << 24).unwrap();
        (space, heap)
    }

    #[test]
    fn alloc_is_usable_from_untrusted_pkru() {
        let (mut space, mut heap) = heap();
        let p = heap.alloc(&mut space, 64).unwrap();
        // The untrusted compartment (trusted key denied) can touch it.
        let pkru = Pkru::deny_only(Pkey::new(1).unwrap());
        space.write_u64(pkru, p, 7).unwrap();
        assert_eq!(space.read_u64(pkru, p).unwrap(), 7);
    }

    #[test]
    fn payloads_are_16_aligned_and_disjoint() {
        let (mut space, mut heap) = heap();
        let mut spans = Vec::new();
        for size in [1u64, 8, 16, 24, 100, 4096, 70_000] {
            let p = heap.alloc(&mut space, size).unwrap();
            assert_eq!(p % 16, 8, "payload after 8-byte header is 8 mod 16");
            let usable = heap.usable_size(&mut space, p).unwrap();
            assert!(usable >= size);
            for &(s, e) in &spans {
                assert!(p + usable <= s || p >= e);
            }
            spans.push((p, p + usable));
        }
    }

    #[test]
    fn free_then_alloc_reuses_space() {
        let (mut space, mut heap) = heap();
        let p = heap.alloc(&mut space, 64).unwrap();
        heap.dealloc(&mut space, p).unwrap();
        let q = heap.alloc(&mut space, 64).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn coalescing_merges_neighbors() {
        let (mut space, mut heap) = heap();
        let a = heap.alloc(&mut space, 48).unwrap();
        let b = heap.alloc(&mut space, 48).unwrap();
        let c = heap.alloc(&mut space, 48).unwrap();
        let _guard = heap.alloc(&mut space, 48).unwrap();
        heap.dealloc(&mut space, a).unwrap();
        heap.dealloc(&mut space, c).unwrap();
        heap.dealloc(&mut space, b).unwrap();
        // All three merged into one chunk that can serve a request larger
        // than any single original chunk.
        let big = heap.alloc(&mut space, 150).unwrap();
        assert_eq!(big, a);
    }

    #[test]
    fn best_fit_prefers_smallest_hole() {
        let (mut space, mut heap) = heap();
        let small = heap.alloc(&mut space, 32).unwrap();
        let _keep1 = heap.alloc(&mut space, 32).unwrap();
        let large = heap.alloc(&mut space, 512).unwrap();
        let _keep2 = heap.alloc(&mut space, 32).unwrap();
        heap.dealloc(&mut space, small).unwrap();
        heap.dealloc(&mut space, large).unwrap();
        // A 32-byte request should land in the small hole, not the big one.
        let p = heap.alloc(&mut space, 32).unwrap();
        assert_eq!(p, small);
    }

    #[test]
    fn invalid_and_double_free_rejected() {
        let (mut space, mut heap) = heap();
        let p = heap.alloc(&mut space, 64).unwrap();
        assert!(heap.dealloc(&mut space, p + 8).is_err());
        heap.dealloc(&mut space, p).unwrap();
        assert_eq!(heap.dealloc(&mut space, p), Err(AllocError::InvalidPointer(p)));
    }

    #[test]
    fn exhaustion_reports_oom() {
        let mut space = AddressSpace::new();
        let mut heap = UntrustedHeap::new(&mut space, UNTRUSTED_BASE, 4096).unwrap();
        assert!(heap.alloc(&mut space, 2048).is_ok());
        assert_eq!(heap.alloc(&mut space, 4096), Err(AllocError::OutOfMemory));
    }

    #[test]
    fn stats_track_live_bytes() {
        let (mut space, mut heap) = heap();
        let p = heap.alloc(&mut space, 100).unwrap();
        let live = heap.stats().live_bytes;
        assert!(live >= 100);
        heap.dealloc(&mut space, p).unwrap();
        assert_eq!(heap.stats().live_bytes, 0);
    }
}
