//! The trusted-pool arena allocator (the modified-jemalloc stand-in).

use std::collections::{BTreeMap, HashMap};

use pkru_mpk::Pkey;
use pkru_vmem::{page_align_up, AddressSpace, Prot, VirtAddr, PAGE_SIZE};

use crate::classes::{size_class_for, SIZE_CLASSES};
use crate::error::AllocError;

/// Pages carved at a time when a size class runs dry.
const RUN_PAGES: u64 = 4;

#[derive(Clone, Copy, Debug)]
struct Live {
    /// Index into [`SIZE_CLASSES`], or `None` for page-granular objects.
    class: Option<usize>,
    /// Usable size in bytes.
    size: u64,
}

/// Arena statistics for the evaluation.
#[derive(Clone, Copy, Debug, Default)]
pub struct ArenaStats {
    /// Bytes currently live.
    pub live_bytes: u64,
    /// Total successful allocations.
    pub allocs: u64,
    /// Total frees.
    pub frees: u64,
    /// High-water mark of live bytes.
    pub peak_bytes: u64,
}

/// A size-class arena confined to one contiguous, pkey-tagged reservation.
///
/// The entire region is mapped once at construction — on-demand paging
/// makes this free until pages are touched (§4.4) — and tagged with the
/// compartment's protection key, so *every* object this arena returns is
/// covered by the key with no per-allocation syscalls. Run and free-list
/// bookkeeping is held outside the untrusted compartment's reach, modeling
/// the paper's "allocator keeps its internal data for each compartment in
/// that compartment's memory region".
pub struct TrustedArena {
    base: VirtAddr,
    span: u64,
    pkey: Pkey,
    bump: VirtAddr,
    class_free: Vec<Vec<VirtAddr>>,
    large_free: BTreeMap<u64, Vec<VirtAddr>>,
    live: HashMap<VirtAddr, Live>,
    stats: ArenaStats,
}

impl TrustedArena {
    /// Maps `[base, base + span)`, tags it with `pkey`, and returns the
    /// arena managing it.
    pub fn new(
        space: &mut AddressSpace,
        base: VirtAddr,
        span: u64,
        pkey: Pkey,
    ) -> Result<TrustedArena, AllocError> {
        space.mmap_at(base, span, Prot::READ_WRITE)?;
        space.pkey_mprotect(base, span, Prot::READ_WRITE, pkey)?;
        Ok(TrustedArena {
            base,
            span,
            pkey,
            bump: base,
            class_free: vec![Vec::new(); SIZE_CLASSES.len()],
            large_free: BTreeMap::new(),
            live: HashMap::new(),
            stats: ArenaStats::default(),
        })
    }

    /// The protection key covering this arena's pages.
    pub fn pkey(&self) -> Pkey {
        self.pkey
    }

    /// Whether `addr` falls inside this arena's reservation.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr >= self.base && addr < self.base + self.span
    }

    /// The reservation's base address.
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Current statistics.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Allocates `size` bytes (16-byte aligned).
    pub fn alloc(&mut self, size: u64) -> Result<VirtAddr, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        let (addr, live) = match size_class_for(size) {
            Some(class) => {
                if self.class_free[class].is_empty() {
                    self.refill_class(class)?;
                }
                // The refill either errored or pushed at least one slot.
                let addr = self.class_free[class].pop().expect("refilled class non-empty");
                (addr, Live { class: Some(class), size: SIZE_CLASSES[class] })
            }
            None => {
                let bytes = page_align_up(size);
                let pages = bytes / PAGE_SIZE;
                let addr = match self.large_free.get_mut(&pages) {
                    Some(list) if !list.is_empty() => {
                        // Exact-fit reuse keeps large spans from leaking.
                        list.pop().expect("checked non-empty")
                    }
                    _ => self.carve(bytes)?,
                };
                (addr, Live { class: None, size: bytes })
            }
        };
        self.live.insert(addr, live);
        self.stats.allocs += 1;
        self.stats.live_bytes += live.size;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.live_bytes);
        Ok(addr)
    }

    /// Frees a previously allocated object.
    pub fn dealloc(&mut self, ptr: VirtAddr) -> Result<(), AllocError> {
        let live = self.live.remove(&ptr).ok_or(AllocError::InvalidPointer(ptr))?;
        match live.class {
            Some(class) => self.class_free[class].push(ptr),
            None => self.large_free.entry(live.size / PAGE_SIZE).or_default().push(ptr),
        }
        self.stats.frees += 1;
        self.stats.live_bytes -= live.size;
        Ok(())
    }

    /// Usable size of the live object at `ptr`.
    pub fn usable_size(&self, ptr: VirtAddr) -> Option<u64> {
        self.live.get(&ptr).map(|l| l.size)
    }

    /// Whether `ptr` is the base of a live allocation.
    pub fn is_live(&self, ptr: VirtAddr) -> bool {
        self.live.contains_key(&ptr)
    }

    fn refill_class(&mut self, class: usize) -> Result<(), AllocError> {
        let slot = SIZE_CLASSES[class];
        let run = self.carve(RUN_PAGES * PAGE_SIZE)?;
        let mut cursor = run;
        while cursor + slot <= run + RUN_PAGES * PAGE_SIZE {
            self.class_free[class].push(cursor);
            cursor += slot;
        }
        Ok(())
    }

    fn carve(&mut self, bytes: u64) -> Result<VirtAddr, AllocError> {
        let addr = self.bump;
        let end = addr.checked_add(bytes).ok_or(AllocError::OutOfMemory)?;
        if end > self.base + self.span {
            return Err(AllocError::OutOfMemory);
        }
        self.bump = end;
        Ok(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TRUSTED_BASE;
    use pkru_mpk::Pkru;

    fn arena() -> (AddressSpace, TrustedArena) {
        let mut space = AddressSpace::new();
        let pkey = Pkey::new(1).unwrap();
        let arena = TrustedArena::new(&mut space, TRUSTED_BASE, 1 << 30, pkey).unwrap();
        (space, arena)
    }

    #[test]
    fn alloc_returns_tagged_memory() {
        let (mut space, mut arena) = arena();
        let p = arena.alloc(64).unwrap();
        assert!(arena.contains(p));
        assert_eq!(space.page_pkey(p), Some(Pkey::new(1).unwrap()));
        space.write_u64(Pkru::ALL_ACCESS, p, 99).unwrap();
        assert_eq!(space.read_u64(Pkru::ALL_ACCESS, p).unwrap(), 99);
    }

    #[test]
    fn distinct_live_allocations_never_overlap() {
        let (_space, mut arena) = arena();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for size in [1u64, 16, 17, 100, 4096, 5000, 100_000] {
            let p = arena.alloc(size).unwrap();
            let usable = arena.usable_size(p).unwrap();
            assert!(usable >= size);
            for &(s, e) in &spans {
                assert!(p + usable <= s || p >= e, "overlap at {p:#x}");
            }
            spans.push((p, p + usable));
        }
    }

    #[test]
    fn free_slot_is_reused() {
        let (_space, mut arena) = arena();
        let p = arena.alloc(64).unwrap();
        arena.dealloc(p).unwrap();
        let q = arena.alloc(64).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn large_span_exact_fit_reuse() {
        let (_space, mut arena) = arena();
        let p = arena.alloc(3 * PAGE_SIZE).unwrap();
        arena.dealloc(p).unwrap();
        let q = arena.alloc(3 * PAGE_SIZE).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn double_free_rejected() {
        let (_space, mut arena) = arena();
        let p = arena.alloc(64).unwrap();
        arena.dealloc(p).unwrap();
        assert_eq!(arena.dealloc(p), Err(AllocError::InvalidPointer(p)));
    }

    #[test]
    fn exhaustion_reports_oom() {
        let mut space = AddressSpace::new();
        let pkey = Pkey::new(1).unwrap();
        let mut arena = TrustedArena::new(&mut space, TRUSTED_BASE, 4 * PAGE_SIZE, pkey).unwrap();
        let _ = arena.alloc(2 * PAGE_SIZE).unwrap();
        let _ = arena.alloc(2 * PAGE_SIZE).unwrap();
        assert_eq!(arena.alloc(2 * PAGE_SIZE), Err(AllocError::OutOfMemory));
    }

    #[test]
    fn stats_track_live_and_peak() {
        let (_space, mut arena) = arena();
        let p = arena.alloc(100).unwrap();
        let q = arena.alloc(100).unwrap();
        assert_eq!(arena.stats().live_bytes, 224); // Two 112-byte classes.
        arena.dealloc(p).unwrap();
        arena.dealloc(q).unwrap();
        assert_eq!(arena.stats().live_bytes, 0);
        assert_eq!(arena.stats().peak_bytes, 224);
        assert_eq!(arena.stats().allocs, 2);
        assert_eq!(arena.stats().frees, 2);
    }

    #[test]
    fn zero_size_rejected() {
        let (_space, mut arena) = arena();
        assert_eq!(arena.alloc(0), Err(AllocError::ZeroSize));
    }
}
