//! The split allocator facade tying both pools together.

use pkru_mpk::Pkey;
use pkru_vmem::{SharedSpace, VirtAddr};

use crate::error::AllocError;
use crate::trusted::TrustedArena;
use crate::untrusted::UntrustedHeap;
use crate::{CompartmentAlloc, TRUSTED_BASE, TRUSTED_SPAN, UNTRUSTED_BASE, UNTRUSTED_SPAN};

/// Which pool an object lives in.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Domain {
    /// The trusted pool `M_T`, accessible only from `T`.
    Trusted,
    /// The shared pool `M_U`, accessible from both compartments.
    Untrusted,
}

/// Construction parameters for [`PkAlloc`].
#[derive(Clone, Copy, Debug)]
pub struct PkAllocConfig {
    /// Base of the trusted reservation.
    pub trusted_base: VirtAddr,
    /// Span of the trusted reservation (46 bits by default; "this value can
    /// be tuned on a per-application basis", §4.4).
    pub trusted_span: u64,
    /// Base of the untrusted reservation.
    pub untrusted_base: VirtAddr,
    /// Span of the untrusted reservation.
    pub untrusted_span: u64,
    /// Ablation switch (§5.3): serve *both* pools from trusted memory, as
    /// in the paper's experiment isolating the cost of the less performant
    /// `M_U` allocator. Only meaningful with call gates disabled.
    pub unified_pools: bool,
}

impl Default for PkAllocConfig {
    fn default() -> PkAllocConfig {
        PkAllocConfig {
            trusted_base: TRUSTED_BASE,
            trusted_span: TRUSTED_SPAN,
            untrusted_base: UNTRUSTED_BASE,
            untrusted_span: UNTRUSTED_SPAN,
            unified_pools: false,
        }
    }
}

impl PkAllocConfig {
    /// Pool geometry for worker `worker` of a multi-threaded host sharing
    /// one address space.
    ///
    /// Each worker's allocator manages a disjoint slice of the `M_T` and
    /// `M_U` reservations (per-thread arenas), so workers allocate without
    /// contending on allocator state; the slices still carry the usual
    /// keys, so the compartment rights story is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `worker >= MAX_WORKERS` (the carve-out geometry supports
    /// [`MAX_WORKERS`](crate::MAX_WORKERS) workers per address space).
    pub fn for_worker(worker: usize) -> PkAllocConfig {
        assert!(
            worker < crate::MAX_WORKERS,
            "worker index {worker} exceeds the {}-worker geometry",
            crate::MAX_WORKERS
        );
        let worker = worker as u64;
        PkAllocConfig {
            trusted_base: TRUSTED_BASE + worker * crate::WORKER_TRUSTED_SPAN,
            trusted_span: crate::WORKER_TRUSTED_SPAN,
            untrusted_base: UNTRUSTED_BASE + worker * crate::WORKER_UNTRUSTED_SPAN,
            untrusted_span: crate::WORKER_UNTRUSTED_SPAN,
            unified_pools: false,
        }
    }
}

/// Aggregate statistics across both pools.
#[derive(Clone, Copy, Debug, Default)]
pub struct PkAllocStats {
    /// Successful allocations served from `M_T`.
    pub trusted_allocs: u64,
    /// Successful allocations served from `M_U`.
    pub untrusted_allocs: u64,
    /// Live bytes in `M_T`.
    pub trusted_live_bytes: u64,
    /// Live bytes in `M_U`.
    pub untrusted_live_bytes: u64,
}

impl PkAllocStats {
    /// Fraction of all allocations served from `M_U` (the `%M_U` column of
    /// Tables 1 and 2).
    pub fn percent_untrusted(&self) -> f64 {
        let total = self.trusted_allocs + self.untrusted_allocs;
        if total == 0 {
            0.0
        } else {
            100.0 * self.untrusted_allocs as f64 / total as f64
        }
    }
}

/// The split allocator: one trusted arena plus one untrusted heap over a
/// shared simulated address space.
///
/// This is the drop-in `GlobalAlloc` replacement of §4.4: `T` code calls
/// [`CompartmentAlloc::alloc`] as before, instrumented (shared) allocation
/// sites call [`CompartmentAlloc::untrusted_alloc`], and
/// [`CompartmentAlloc::realloc`] transparently keeps objects in their
/// original pool.
pub struct PkAlloc {
    space: SharedSpace,
    trusted: TrustedArena,
    untrusted: UntrustedHeap,
    trusted_pkey: Pkey,
    unified: bool,
    stats: PkAllocStats,
}

impl PkAlloc {
    /// Creates a split allocator with default pool geometry.
    ///
    /// Maps and tags both reservations inside `space`; `trusted_pkey` is
    /// the key protecting `M_T`.
    pub fn new(space: SharedSpace, trusted_pkey: Pkey) -> Result<PkAlloc, AllocError> {
        PkAlloc::with_config(space, trusted_pkey, PkAllocConfig::default())
    }

    /// Creates a split allocator with explicit pool geometry.
    pub fn with_config(
        space: SharedSpace,
        trusted_pkey: Pkey,
        config: PkAllocConfig,
    ) -> Result<PkAlloc, AllocError> {
        let (trusted, untrusted) = {
            let mut guard = space.lock();
            let trusted = TrustedArena::new(
                &mut guard,
                config.trusted_base,
                config.trusted_span,
                trusted_pkey,
            )?;
            let untrusted =
                UntrustedHeap::new(&mut guard, config.untrusted_base, config.untrusted_span)?;
            (trusted, untrusted)
        };
        Ok(PkAlloc {
            space,
            trusted,
            untrusted,
            trusted_pkey,
            unified: config.unified_pools,
            stats: PkAllocStats::default(),
        })
    }

    /// The key protecting the trusted pool.
    pub fn trusted_pkey(&self) -> Pkey {
        self.trusted_pkey
    }

    /// The shared address space handle.
    pub fn space(&self) -> &SharedSpace {
        &self.space
    }

    /// Allocates from an explicitly chosen pool.
    pub fn alloc_in(&mut self, domain: Domain, size: u64) -> Result<VirtAddr, AllocError> {
        match domain {
            Domain::Trusted => self.alloc(size),
            Domain::Untrusted => self.untrusted_alloc(size),
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> PkAllocStats {
        let mut s = self.stats;
        s.trusted_live_bytes = self.trusted.stats().live_bytes;
        s.untrusted_live_bytes = self.untrusted.stats().live_bytes;
        s
    }

    /// Resets the allocation counters (pool contents are unaffected).
    pub fn reset_stats(&mut self) {
        self.stats = PkAllocStats::default();
    }
}

impl CompartmentAlloc for PkAlloc {
    fn domain_of(&self, addr: VirtAddr) -> Option<Domain> {
        if self.trusted.contains(addr) {
            Some(Domain::Trusted)
        } else if self.untrusted.contains(addr) {
            Some(Domain::Untrusted)
        } else {
            None
        }
    }

    fn alloc_counts(&self) -> (u64, u64) {
        (self.stats.trusted_allocs, self.stats.untrusted_allocs)
    }

    fn alloc(&mut self, size: u64) -> Result<VirtAddr, AllocError> {
        let p = self.trusted.alloc(size)?;
        self.stats.trusted_allocs += 1;
        Ok(p)
    }

    fn untrusted_alloc(&mut self, size: u64) -> Result<VirtAddr, AllocError> {
        if self.unified {
            // Ablation: both pools from `M_T`; still counted as untrusted
            // so `%M_U` reflects the instrumentation decisions.
            let p = self.trusted.alloc(size)?;
            self.stats.untrusted_allocs += 1;
            return Ok(p);
        }
        let p = {
            let mut guard = self.space.lock();
            self.untrusted.alloc(&mut guard, size)?
        };
        self.stats.untrusted_allocs += 1;
        Ok(p)
    }

    fn realloc(&mut self, ptr: VirtAddr, new_size: u64) -> Result<VirtAddr, AllocError> {
        // The object must stay in the pool its base pointer originated
        // from (§4.2) so reallocations behave consistently regardless of
        // the execution path.
        let domain = self.domain_of(ptr).ok_or(AllocError::InvalidPointer(ptr))?;
        let old_size = self.usable_size(ptr).ok_or(AllocError::InvalidPointer(ptr))?;
        let new_ptr = self.alloc_in(domain, new_size)?;
        let n = old_size.min(new_size) as usize;
        {
            let mut guard = self.space.lock();
            let mut buf = vec![0u8; n];
            // Both ranges are live allocations; mapped by construction.
            guard.read_supervisor(ptr, &mut buf).expect("live allocation mapped");
            guard.write_supervisor(new_ptr, &buf).expect("live allocation mapped");
        }
        self.dealloc(ptr)?;
        Ok(new_ptr)
    }

    fn dealloc(&mut self, ptr: VirtAddr) -> Result<(), AllocError> {
        match self.domain_of(ptr) {
            Some(Domain::Trusted) => self.trusted.dealloc(ptr),
            Some(Domain::Untrusted) => {
                let mut guard = self.space.lock();
                self.untrusted.dealloc(&mut guard, ptr)
            }
            None => Err(AllocError::InvalidPointer(ptr)),
        }
    }

    fn usable_size(&self, ptr: VirtAddr) -> Option<u64> {
        match self.domain_of(ptr)? {
            Domain::Trusted => self.trusted.usable_size(ptr),
            Domain::Untrusted => {
                let mut guard = self.space.lock();
                self.untrusted.usable_size(&mut guard, ptr)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkru_mpk::Pkru;

    fn alloc() -> PkAlloc {
        let space = SharedSpace::new();
        PkAlloc::new(space, Pkey::new(1).unwrap()).unwrap()
    }

    #[test]
    fn pools_are_disjoint_and_tagged() {
        let mut a = alloc();
        let t = a.alloc(64).unwrap();
        let u = a.untrusted_alloc(64).unwrap();
        assert_eq!(a.domain_of(t), Some(Domain::Trusted));
        assert_eq!(a.domain_of(u), Some(Domain::Untrusted));
        let space = a.space().lock();
        assert_eq!(space.page_pkey(t), Some(Pkey::new(1).unwrap()));
        assert_eq!(space.page_pkey(u), Some(Pkey::DEFAULT));
        // The untrusted PKRU can reach M_U but not M_T.
        let upkru = Pkru::deny_only(Pkey::new(1).unwrap());
        assert!(space.read_u64(upkru, u).is_ok());
        assert!(space.read_u64(upkru, t).unwrap_err().is_pkey_violation());
    }

    #[test]
    fn realloc_stays_in_origin_pool() {
        let mut a = alloc();
        let t = a.alloc(64).unwrap();
        let u = a.untrusted_alloc(64).unwrap();
        {
            let mut space = a.space().lock();
            space.write_u64(Pkru::ALL_ACCESS, t, 0x1111).unwrap();
            space.write_u64(Pkru::ALL_ACCESS, u, 0x2222).unwrap();
        }
        let t2 = a.realloc(t, 100_000).unwrap();
        let u2 = a.realloc(u, 100_000).unwrap();
        assert_eq!(a.domain_of(t2), Some(Domain::Trusted));
        assert_eq!(a.domain_of(u2), Some(Domain::Untrusted));
        let space = a.space().lock();
        assert_eq!(space.read_u64(Pkru::ALL_ACCESS, t2).unwrap(), 0x1111);
        assert_eq!(space.read_u64(Pkru::ALL_ACCESS, u2).unwrap(), 0x2222);
    }

    #[test]
    fn realloc_shrink_preserves_prefix() {
        let mut a = alloc();
        let p = a.alloc(256).unwrap();
        {
            let mut space = a.space().lock();
            for i in 0..32 {
                space.write_u64(Pkru::ALL_ACCESS, p + i * 8, i).unwrap();
            }
        }
        let q = a.realloc(p, 64).unwrap();
        let space = a.space().lock();
        for i in 0..8 {
            assert_eq!(space.read_u64(Pkru::ALL_ACCESS, q + i * 8).unwrap(), i);
        }
    }

    #[test]
    fn dealloc_routes_by_domain() {
        let mut a = alloc();
        let t = a.alloc(64).unwrap();
        let u = a.untrusted_alloc(64).unwrap();
        a.dealloc(t).unwrap();
        a.dealloc(u).unwrap();
        assert_eq!(a.dealloc(0x99), Err(AllocError::InvalidPointer(0x99)));
    }

    #[test]
    fn percent_untrusted_statistic() {
        let mut a = alloc();
        for _ in 0..3 {
            a.alloc(32).unwrap();
        }
        a.untrusted_alloc(32).unwrap();
        let s = a.stats();
        assert_eq!(s.trusted_allocs, 3);
        assert_eq!(s.untrusted_allocs, 1);
        assert!((s.percent_untrusted() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn worker_geometries_coexist_in_one_space() {
        let space = SharedSpace::new();
        let key = Pkey::new(1).unwrap();
        let mut a0 =
            PkAlloc::with_config(space.clone(), key, PkAllocConfig::for_worker(0)).unwrap();
        let mut a1 =
            PkAlloc::with_config(space.clone(), key, PkAllocConfig::for_worker(1)).unwrap();
        let t0 = a0.alloc(64).unwrap();
        let t1 = a1.alloc(64).unwrap();
        let u0 = a0.untrusted_alloc(64).unwrap();
        let u1 = a1.untrusted_alloc(64).unwrap();
        // Disjoint slices, one shared trusted key.
        assert_ne!(t0, t1);
        assert_ne!(u0, u1);
        assert_eq!(a0.domain_of(t1), None, "worker 0 does not own worker 1's slice");
        assert_eq!(space.page_pkey(t0), Some(key));
        assert_eq!(space.page_pkey(t1), Some(key));
        assert_eq!(space.page_pkey(u0), Some(Pkey::DEFAULT));
        assert_eq!(space.page_pkey(u1), Some(Pkey::DEFAULT));
    }

    #[test]
    #[should_panic(expected = "worker index")]
    fn worker_geometry_rejects_out_of_range_index() {
        let _ = PkAllocConfig::for_worker(crate::MAX_WORKERS);
    }

    #[test]
    fn unified_pools_ablation_serves_mu_from_mt() {
        let space = SharedSpace::new();
        let config = PkAllocConfig { unified_pools: true, ..PkAllocConfig::default() };
        let mut a = PkAlloc::with_config(space, Pkey::new(1).unwrap(), config).unwrap();
        let u = a.untrusted_alloc(64).unwrap();
        assert_eq!(a.domain_of(u), Some(Domain::Trusted));
        assert_eq!(a.stats().untrusted_allocs, 1);
    }
}
