//! `pkalloc`: the compartment-aware split heap allocator (paper §4.4).
//!
//! PKRU-Safe must guarantee that the trusted heap `M_T` and the untrusted
//! heap `M_U` never share a page — general-purpose allocators freely co-
//! locate same-sized objects, which would either crash the partitioned
//! program or leak trusted data. `pkalloc` solves this by wrapping *two*
//! disjoint allocators behind one interface:
//!
//! - [`TrustedArena`] — a jemalloc-style size-class arena that only ever
//!   hands out pages from a large region reserved at startup (46 bits of
//!   address space by default, mapped with demand paging so the reservation
//!   is free) and tagged with the trusted protection key;
//! - [`UntrustedHeap`] — a libc-malloc-style boundary-tag free-list
//!   allocator whose pages carry the default key and are therefore
//!   accessible from both compartments.
//!
//! Pages are never migrated between the pools, reallocation keeps an object
//! in the pool its base pointer came from, and each allocator's internal
//! bookkeeping is unreachable from the other compartment. The untrusted
//! heap even keeps its chunk headers *inside* `M_U`, like real `malloc` —
//! which means a compromised untrusted compartment can corrupt its own
//! allocator metadata but never the trusted pool's.
//!
//! [`BaselineAlloc`] provides the unmodified single-pool allocator used as
//! the `base` configuration in the evaluation.

mod baseline;
mod classes;
mod error;
mod split;
mod trusted;
mod untrusted;

pub use baseline::BaselineAlloc;
pub use classes::{size_class_for, SIZE_CLASSES};
pub use error::AllocError;
pub use split::{Domain, PkAlloc, PkAllocConfig, PkAllocStats};
pub use trusted::TrustedArena;
pub use untrusted::UntrustedHeap;

use pkru_vmem::VirtAddr;

/// Base of the reserved trusted region (`M_T`).
pub const TRUSTED_BASE: VirtAddr = 0x4000_0000_0000;

/// Span of the trusted reservation: 46 bits, per the paper's default.
pub const TRUSTED_SPAN: u64 = 1 << 46;

/// Base of the reserved untrusted region (`M_U`) managed by `pkalloc`.
///
/// Placed low in the address space so that the paper's fixed secret
/// address (`0x1680_0000_0000`, §5.4) sits *above* every untrusted buffer
/// — the direction the exploit's out-of-bounds indexing reaches.
pub const UNTRUSTED_BASE: VirtAddr = 0x0800_0000_0000;

/// Span of the untrusted reservation.
pub const UNTRUSTED_SPAN: u64 = 1 << 40;

/// Per-worker trusted carve-out inside the shared trusted region.
///
/// When many worker threads share one address space, each worker's
/// allocator manages its own disjoint slice of `M_T`/`M_U` (the classic
/// per-thread-arena design) so allocation needs no cross-worker
/// coordination beyond the page tables themselves. Every trusted slice is
/// still tagged with the *same* trusted key: rights are per-thread (PKRU),
/// placement is per-worker.
pub const WORKER_TRUSTED_SPAN: u64 = 1 << 40;

/// Per-worker untrusted carve-out inside the shared untrusted region.
pub const WORKER_UNTRUSTED_SPAN: u64 = 1 << 34;

/// Maximum workers the carve-out geometry supports in one address space.
pub const MAX_WORKERS: usize = (UNTRUSTED_SPAN / WORKER_UNTRUSTED_SPAN) as usize;

/// The uniform allocation interface (the extended `GlobalAlloc` trait).
///
/// The paper extends Rust's `liballoc` with untrusted variants of each
/// allocation function (`__rust_untrusted_alloc` beside `__rust_alloc`,
/// §4.2); this trait is that extended surface. `realloc` must keep the
/// object in the pool its base pointer originated from, so reallocations
/// behave consistently regardless of the execution path.
pub trait CompartmentAlloc {
    /// Allocates `size` bytes from the trusted pool (`__rust_alloc`).
    fn alloc(&mut self, size: u64) -> Result<VirtAddr, AllocError>;

    /// Allocates `size` bytes from the untrusted pool
    /// (`__rust_untrusted_alloc`).
    fn untrusted_alloc(&mut self, size: u64) -> Result<VirtAddr, AllocError>;

    /// Resizes the object at `ptr`, staying in its original pool
    /// (`__rust_realloc`).
    fn realloc(&mut self, ptr: VirtAddr, new_size: u64) -> Result<VirtAddr, AllocError>;

    /// Frees the object at `ptr` (`__rust_dealloc`).
    fn dealloc(&mut self, ptr: VirtAddr) -> Result<(), AllocError>;

    /// The usable size of the object at `ptr`, if it is a live allocation.
    fn usable_size(&self, ptr: VirtAddr) -> Option<u64>;

    /// The pool `ptr` belongs to, judged by reservation ranges.
    fn domain_of(&self, ptr: VirtAddr) -> Option<Domain>;

    /// (trusted, untrusted) allocation counts so far — the `%M_U`
    /// statistic of Tables 1 and 2.
    fn alloc_counts(&self) -> (u64, u64);
}
