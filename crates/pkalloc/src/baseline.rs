//! The unmodified single-pool allocator used as the `base` configuration.

use pkru_mpk::Pkey;
use pkru_vmem::{SharedSpace, VirtAddr};

use crate::error::AllocError;
use crate::trusted::TrustedArena;
use crate::{CompartmentAlloc, Domain};

/// Default heap placement for the baseline allocator.
const BASELINE_BASE: VirtAddr = 0x1000_0000_0000;
const BASELINE_SPAN: u64 = 1 << 40;

/// A conventional single-heap allocator: what Servo runs before PKRU-Safe.
///
/// All pages carry the default protection key, every compartment can reach
/// every object, and [`CompartmentAlloc::untrusted_alloc`] is simply an
/// alias for [`CompartmentAlloc::alloc`] — there is only one pool. The
/// evaluation's `base` configuration and the micro-benchmarks' trusted
/// twins run on this.
pub struct BaselineAlloc {
    arena: TrustedArena,
    space: SharedSpace,
}

impl BaselineAlloc {
    /// Creates the baseline allocator over `space`.
    pub fn new(space: SharedSpace) -> Result<BaselineAlloc, AllocError> {
        let arena = {
            let mut guard = space.lock();
            TrustedArena::new(&mut guard, BASELINE_BASE, BASELINE_SPAN, Pkey::DEFAULT)?
        };
        Ok(BaselineAlloc { arena, space })
    }

    /// The shared address space handle.
    pub fn space(&self) -> &SharedSpace {
        &self.space
    }
}

impl CompartmentAlloc for BaselineAlloc {
    fn alloc(&mut self, size: u64) -> Result<VirtAddr, AllocError> {
        self.arena.alloc(size)
    }

    fn untrusted_alloc(&mut self, size: u64) -> Result<VirtAddr, AllocError> {
        self.arena.alloc(size)
    }

    fn realloc(&mut self, ptr: VirtAddr, new_size: u64) -> Result<VirtAddr, AllocError> {
        let old_size = self.arena.usable_size(ptr).ok_or(AllocError::InvalidPointer(ptr))?;
        let new_ptr = self.arena.alloc(new_size)?;
        let n = old_size.min(new_size) as usize;
        {
            let mut guard = self.space.lock();
            let mut buf = vec![0u8; n];
            // Both ranges are live allocations; mapped by construction.
            guard.read_supervisor(ptr, &mut buf).expect("live allocation mapped");
            guard.write_supervisor(new_ptr, &buf).expect("live allocation mapped");
        }
        self.arena.dealloc(ptr)?;
        Ok(new_ptr)
    }

    fn dealloc(&mut self, ptr: VirtAddr) -> Result<(), AllocError> {
        self.arena.dealloc(ptr)
    }

    fn usable_size(&self, ptr: VirtAddr) -> Option<u64> {
        self.arena.usable_size(ptr)
    }

    fn domain_of(&self, ptr: VirtAddr) -> Option<Domain> {
        self.arena.contains(ptr).then_some(Domain::Trusted)
    }

    fn alloc_counts(&self) -> (u64, u64) {
        (self.arena.stats().allocs, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkru_mpk::Pkru;

    #[test]
    fn single_pool_reachable_from_any_pkru() {
        let space = SharedSpace::new();
        let mut a = BaselineAlloc::new(space.clone()).unwrap();
        let t = a.alloc(64).unwrap();
        let u = a.untrusted_alloc(64).unwrap();
        let restricted = Pkru::deny_only(Pkey::new(1).unwrap());
        let mut guard = space.lock();
        // No key tagging: everything is reachable, as in unmodified Servo.
        assert!(guard.write_u64(restricted, t, 1).is_ok());
        assert!(guard.write_u64(restricted, u, 2).is_ok());
    }

    #[test]
    fn realloc_copies_contents() {
        let space = SharedSpace::new();
        let mut a = BaselineAlloc::new(space.clone()).unwrap();
        let p = a.alloc(32).unwrap();
        space.lock().write_u64(Pkru::ALL_ACCESS, p, 0xabcd).unwrap();
        let q = a.realloc(p, 1024).unwrap();
        assert_eq!(space.lock().read_u64(Pkru::ALL_ACCESS, q).unwrap(), 0xabcd);
    }
}
