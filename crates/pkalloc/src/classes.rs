//! jemalloc-style size classes for the trusted arena.

/// The small-object size classes, in bytes.
///
/// Spacing follows jemalloc's scheme: power-of-two groups subdivided into
/// four classes each, which bounds internal fragmentation at 25%.
pub const SIZE_CLASSES: &[u64] = &[
    16, 32, 48, 64, 80, 96, 112, 128, 160, 192, 224, 256, 320, 384, 448, 512, 640, 768, 896, 1024,
    1280, 1536, 1792, 2048, 2560, 3072, 3584, 4096,
];

/// The smallest size class that fits `size`, or `None` when the request is
/// a *large* allocation served directly from whole pages.
pub fn size_class_for(size: u64) -> Option<usize> {
    if size == 0 {
        return Some(0);
    }
    SIZE_CLASSES.iter().position(|&c| c >= size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_sorted_and_16_aligned() {
        for w in SIZE_CLASSES.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &c in SIZE_CLASSES {
            assert_eq!(c % 16, 0);
        }
    }

    #[test]
    fn class_lookup() {
        assert_eq!(size_class_for(1), Some(0));
        assert_eq!(size_class_for(16), Some(0));
        assert_eq!(size_class_for(17), Some(1));
        assert_eq!(size_class_for(4096), Some(SIZE_CLASSES.len() - 1));
        assert_eq!(size_class_for(4097), None);
    }

    #[test]
    fn internal_fragmentation_bounded() {
        // Each class wastes at most 25% relative to the previous class + 1.
        for i in 1..SIZE_CLASSES.len() {
            let request = SIZE_CLASSES[i - 1] + 1;
            let served = SIZE_CLASSES[i];
            assert!(served as f64 / request as f64 <= 2.0, "class {i} too sparse");
        }
    }
}
