//! Structured diagnostics for the gate-integrity lint.

use core::fmt;

use lir::BlockId;

/// What a [`LintError`] is about.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LintErrorKind {
    /// A gate-exit instruction with no matching enter on this path.
    UnbalancedGateExit {
        /// The rendered mnemonic of the offending gate instruction.
        gate: &'static str,
    },
    /// A return while a gate region is still open on this path.
    UnmatchedGateAtReturn {
        /// Open `gate.enter.untrusted` nesting depth at the return.
        untrusted_depth: u32,
        /// Open `gate.enter.trusted` nesting depth at the return.
        trusted_depth: u32,
    },
    /// A join point reachable with two different gate states — the gate
    /// discipline must be path-independent.
    InconsistentGateState,
    /// A direct call to an untrusted function made with trusted rights
    /// (not bracketed by a T→U gate).
    UngatedUntrustedCall {
        /// The untrusted callee.
        callee: String,
    },
    /// An indirect call made with trusted rights whose conservative
    /// target set (arity-matched address-taken functions) includes an
    /// untrusted function — the unknown-callee analogue of
    /// [`LintErrorKind::UngatedUntrustedCall`], previously skipped
    /// silently.
    UngatedUntrustedIndirectCall {
        /// The untrusted function the call may reach.
        callee: String,
    },
    /// An indirect call made while untrusted rights are in force whose
    /// conservative target set includes a trusted function that does not
    /// immediately re-enter the trusted compartment (no leading
    /// `gate.enter.trusted`): trusted code would execute with the sandbox's
    /// PKRU.
    IndirectCallToUngatedTrusted {
        /// The ungated trusted function the call may reach.
        callee: String,
    },
    /// A gate instruction inside an untrusted function. Gates are
    /// trusted-side infrastructure; untrusted code able to execute them
    /// could restore its own rights (the WRPKRU-scanning concern, §3.2).
    GateInUntrustedFunction,
    /// A provenance-logging hook inside an untrusted function. The
    /// metadata table lives in `M_T`; only trusted code may feed it.
    ProvHookInUntrustedFunction,
    /// A trusted-pool allocation executed while the untrusted compartment
    /// is active. The pointer would be born inaccessible to the code that
    /// requested it.
    TrustedAllocInUntrustedRegion,
}

/// A gate-integrity defect, located like a [`lir::VerifyError`]:
/// function, block, and instruction index.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LintError {
    /// Function name.
    pub func: String,
    /// Offending block.
    pub block: BlockId,
    /// Instruction index within the block.
    pub index: usize,
    /// What went wrong.
    pub kind: LintErrorKind,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let LintError { func, block, index, kind } = self;
        match kind {
            LintErrorKind::UnbalancedGateExit { gate } => {
                write!(f, "@{func} bb{block}: {gate} at index {index} has no matching enter")
            }
            LintErrorKind::UnmatchedGateAtReturn { untrusted_depth, trusted_depth } => write!(
                f,
                "@{func} bb{block}: return at index {index} with open gate region \
                 (untrusted depth {untrusted_depth}, trusted depth {trusted_depth})"
            ),
            LintErrorKind::InconsistentGateState => {
                write!(f, "@{func} bb{block}: reached with inconsistent gate states")
            }
            LintErrorKind::UngatedUntrustedCall { callee } => {
                write!(f, "@{func} bb{block}: ungated call to untrusted @{callee} at index {index}")
            }
            LintErrorKind::UngatedUntrustedIndirectCall { callee } => write!(
                f,
                "@{func} bb{block}: ungated indirect call at index {index} may target untrusted \
                 @{callee}"
            ),
            LintErrorKind::IndirectCallToUngatedTrusted { callee } => write!(
                f,
                "@{func} bb{block}: indirect call at index {index} under untrusted rights may \
                 target ungated trusted @{callee}"
            ),
            LintErrorKind::GateInUntrustedFunction => write!(
                f,
                "@{func} bb{block}: gate instruction at index {index} inside untrusted function"
            ),
            LintErrorKind::ProvHookInUntrustedFunction => write!(
                f,
                "@{func} bb{block}: provenance hook at index {index} inside untrusted function"
            ),
            LintErrorKind::TrustedAllocInUntrustedRegion => write!(
                f,
                "@{func} bb{block}: trusted-pool alloc at index {index} while the untrusted \
                 compartment is active"
            ),
        }
    }
}

impl std::error::Error for LintError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_matches_verify_error_style() {
        let e = LintError {
            func: "main".into(),
            block: 2,
            index: 5,
            kind: LintErrorKind::UngatedUntrustedCall { callee: "clib::f".into() },
        };
        assert_eq!(e.to_string(), "@main bb2: ungated call to untrusted @clib::f at index 5");
        let e = LintError {
            func: "w".into(),
            block: 0,
            index: 1,
            kind: LintErrorKind::UnbalancedGateExit { gate: "gate.exit.untrusted" },
        };
        assert_eq!(e.to_string(), "@w bb0: gate.exit.untrusted at index 1 has no matching enter");
    }
}
