//! Whole-module adversarial reachability scan (the Garmr attack taxonomy).
//!
//! `gatelint` asks "did the compiler passes emit balanced gates?" per
//! function. This scanner asks the adversarial question instead: treating
//! every `untrusted` function as attacker-controlled, what can that code
//! actually reach? It walks the interprocedural callgraph (indirect calls
//! resolved conservatively) from every untrusted entry point and reports
//! three finding classes, one per Garmr attack family:
//!
//! - **SCAN001 — unsanctioned gate.** A rights-changing instruction outside
//!   the exact single-block wrapper shapes the compiler passes synthesize:
//!   the IR analogue of a stray WRPKRU gadget in the binary. Reachability
//!   from an untrusted entry is attached as a witness call path; an
//!   unreachable gadget is still flagged, because a mis-trained indirect
//!   branch or another thread's sanctioned sequence can expose it.
//! - **SCAN002 — syscall outside policy.** A `sys.*` primitive that may
//!   execute while untrusted rights are in force (no allow-list entry
//!   sanctions remapping page protections from below), or whose kind is
//!   missing from the module's `allow sys.*` list — the static half of the
//!   syscall-filter layer that [`lir::Machine::syscall`] enforces at run
//!   time.
//! - **SCAN003 — gate-region re-entry hazard.** A trusted-pool pointer
//!   stored to memory while untrusted rights may be in force: the gate-open
//!   window in which another thread (or the sandbox itself, after the gate
//!   closes) can observe an `M_T` address and replay it. This is the static
//!   over-approximation of Garmr's race attacks, keyed on
//!   [`lir::SiteDomain`] and the callgraph.
//!
//! The scan is sound for the stage-1 pipeline output by construction: the
//! synthesized wrappers are recognized structurally (shape, not the
//! forgeable `synthetic_gate` attribute), sanctioned trusted entries begin
//! with `gate.enter.trusted`, and legitimate modules neither publish `M_T`
//! pointers under dropped rights nor issue undeclared syscalls.

use core::fmt;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use lir::{BlockId, FuncId, Function, Instr, Module, Operand, Reg, SiteDomain, SysKind};

use crate::callgraph::CallGraph;

/// What a [`ScanFinding`] is about. Each variant carries a stable
/// diagnostic code ([`ScanFindingKind::code`]) used by the corpus tests and
/// the CLI JSON report.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ScanFindingKind {
    /// SCAN001: a gate instruction outside a sanctioned wrapper shape.
    UnsanctionedGate {
        /// The rendered mnemonic of the offending gate instruction.
        gate: &'static str,
    },
    /// SCAN002: a `sys.*` primitive outside the syscall policy.
    SyscallOutsidePolicy {
        /// The offending primitive.
        kind: SysKind,
        /// Whether the instruction may execute with untrusted rights in
        /// force (flagged even when the kind is allow-listed); `false`
        /// means the kind is simply missing from the module allow-list.
        untrusted_rights: bool,
    },
    /// SCAN003: a trusted-pool pointer stored while untrusted rights may
    /// be in force.
    GateReentryHazard {
        /// The register holding the published `M_T` pointer.
        reg: Reg,
    },
}

impl ScanFindingKind {
    /// The stable diagnostic code for this finding class.
    pub fn code(&self) -> &'static str {
        match self {
            ScanFindingKind::UnsanctionedGate { .. } => "SCAN001",
            ScanFindingKind::SyscallOutsidePolicy { .. } => "SCAN002",
            ScanFindingKind::GateReentryHazard { .. } => "SCAN003",
        }
    }
}

/// One adversarial-scan finding, located like a [`crate::LintError`], plus
/// the reachability witness: the call chain from an untrusted entry point
/// to the offending function (entry first, offender last). Empty when the
/// function is not reachable from any untrusted entry — the finding then
/// describes a latent, cross-thread-exposable gadget.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScanFinding {
    /// Function name.
    pub func: String,
    /// Offending block.
    pub block: BlockId,
    /// Instruction index within the block.
    pub index: usize,
    /// What went wrong.
    pub kind: ScanFindingKind,
    /// Call chain from an untrusted entry to `func`, if one exists.
    pub witness: Vec<String>,
}

impl fmt::Display for ScanFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ScanFinding { func, block, index, kind, witness } = self;
        write!(f, "{} @{func} bb{block}: ", kind.code())?;
        match kind {
            ScanFindingKind::UnsanctionedGate { gate } => {
                write!(f, "unsanctioned {gate} at index {index}")?;
            }
            ScanFindingKind::SyscallOutsidePolicy { kind, untrusted_rights: true } => {
                write!(f, "{} at index {index} may run with untrusted rights", kind.mnemonic())?;
            }
            ScanFindingKind::SyscallOutsidePolicy { kind, untrusted_rights: false } => {
                write!(f, "{} at index {index} not on the module allow-list", kind.mnemonic())?;
            }
            ScanFindingKind::GateReentryHazard { reg } => {
                write!(
                    f,
                    "trusted-pool pointer %{reg} stored at index {index} while untrusted \
                     rights may be in force"
                )?;
            }
        }
        if !witness.is_empty() {
            write!(f, " [reachable: ")?;
            for (i, hop) in witness.iter().enumerate() {
                if i > 0 {
                    write!(f, " -> ")?;
                }
                write!(f, "@{hop}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

impl std::error::Error for ScanFinding {}

/// Rights that may be in force at a program point, as a two-bit mask — the
/// scan is a may-analysis, so both bits can be set at a join.
const TRUSTED: u8 = 1;
const UNTRUSTED: u8 = 2;

/// Whether `func` is one of the two exact wrapper shapes the compiler
/// passes synthesize — recognized structurally, never via the (forgeable)
/// `synthetic_gate` attribute:
///
/// - T→U gate: `gate.enter.untrusted; call @u; gate.exit.untrusted; ret`
///   with `@u` untrusted (`expand_annotations`);
/// - trusted entry: `gate.enter.trusted; call @impl; gate.exit.trusted;
///   ret` with `@impl` trusted (`instrument_trusted_entries`).
fn is_sanctioned_wrapper(module: &Module, func: &Function) -> bool {
    if func.attrs.untrusted || func.blocks.len() != 1 {
        return false;
    }
    let instrs = &func.blocks[0].instrs;
    if instrs.len() != 4 || !matches!(instrs[3], Instr::Ret { .. }) {
        return false;
    }
    let callee_untrusted =
        |callee: &str| module.find(callee).is_some_and(|id| module.function(id).attrs.untrusted);
    match (&instrs[0], &instrs[1], &instrs[2]) {
        (Instr::GateEnterUntrusted, Instr::Call { callee, .. }, Instr::GateExitUntrusted) => {
            callee_untrusted(callee)
        }
        (Instr::GateEnterTrusted, Instr::Call { callee, .. }, Instr::GateExitTrusted) => {
            !callee_untrusted(callee)
        }
        _ => false,
    }
}

/// Whether a function's first instruction immediately re-enters the
/// trusted compartment, sanctioning calls that arrive with untrusted
/// rights.
fn begins_with_trusted_entry(func: &Function) -> bool {
    func.blocks
        .first()
        .and_then(|b| b.instrs.first())
        .is_some_and(|i| matches!(i, Instr::GateEnterTrusted))
}

/// The per-block entry rights masks for `func`, given the rights its
/// callers may enter it with, iterated to fixpoint over the CFG.
fn block_entry_masks(func: &Function, entry_mask: u8) -> Vec<u8> {
    let mut at_entry = vec![0u8; func.blocks.len()];
    at_entry[0] = entry_mask;
    let mut work: VecDeque<BlockId> = VecDeque::from([0]);
    while let Some(bi) = work.pop_front() {
        let mut mask = at_entry[bi as usize];
        for instr in &func.blocks[bi as usize].instrs {
            mask = step_mask(mask, instr);
        }
        for succ in func.successors(bi) {
            let Some(slot) = at_entry.get_mut(succ as usize) else { continue };
            if *slot | mask != *slot {
                *slot |= mask;
                work.push_back(succ);
            }
        }
    }
    at_entry
}

/// Applies one instruction to a rights mask. Gate transitions collapse the
/// mask (the rights after a gate do not depend on the rights before it);
/// everything else preserves it.
fn step_mask(mask: u8, instr: &Instr) -> u8 {
    match instr {
        Instr::GateEnterUntrusted | Instr::GateExitTrusted => UNTRUSTED,
        Instr::GateExitUntrusted | Instr::GateEnterTrusted => TRUSTED,
        _ => mask,
    }
}

/// The rights mask a function may be *entered* with: untrusted functions
/// always run untrusted; trusted functions run trusted, plus untrusted if
/// some call site with untrusted rights may reach them without crossing a
/// `gate.enter.trusted` prologue. Interprocedural fixpoint, monotone over
/// the finite mask lattice.
fn entry_masks(module: &Module, cg: &CallGraph) -> Vec<u8> {
    let mut entry: Vec<u8> = module
        .functions
        .iter()
        .map(|f| if f.attrs.untrusted { UNTRUSTED } else { TRUSTED })
        .collect();
    loop {
        let mut changed = false;
        for (fi, func) in module.functions.iter().enumerate() {
            let at_entry = block_entry_masks(func, entry[fi]);
            for (bi, block) in func.blocks.iter().enumerate() {
                let mut mask = at_entry[bi];
                for instr in &block.instrs {
                    if mask & UNTRUSTED != 0 {
                        let targets: Vec<FuncId> = match instr {
                            Instr::Call { callee, .. } => module.find(callee).into_iter().collect(),
                            Instr::CallIndirect { args, .. } => {
                                cg.indirect_targets(module, args.len() as u32).collect()
                            }
                            _ => Vec::new(),
                        };
                        for t in targets {
                            let tf = module.function(t);
                            if !begins_with_trusted_entry(tf) && entry[t as usize] & UNTRUSTED == 0
                            {
                                entry[t as usize] |= UNTRUSTED;
                                changed = true;
                            }
                        }
                    }
                    mask = step_mask(mask, instr);
                }
            }
        }
        if !changed {
            return entry;
        }
    }
}

/// Registers of `func` that may hold a trusted-pool pointer: destinations
/// of `alloc` (trusted-domain) sites, closed under pointer arithmetic and
/// `realloc`. Flow-insensitive by design — register reuse over-taints,
/// which is the right direction for an adversarial scan.
fn trusted_ptr_regs(func: &Function) -> BTreeSet<Reg> {
    let mut tainted = BTreeSet::new();
    loop {
        let before = tainted.len();
        for block in &func.blocks {
            for instr in &block.instrs {
                let holds = |op: &Operand| matches!(op, Operand::Reg(r) if tainted.contains(r));
                match instr {
                    Instr::Alloc { dst, domain: SiteDomain::Trusted, .. } => {
                        tainted.insert(*dst);
                    }
                    Instr::Bin { dst, lhs, rhs, .. } if holds(lhs) || holds(rhs) => {
                        tainted.insert(*dst);
                    }
                    Instr::Realloc { dst, ptr, .. } if holds(ptr) => {
                        tainted.insert(*dst);
                    }
                    _ => {}
                }
            }
        }
        if tainted.len() == before {
            return tainted;
        }
    }
}

/// BFS witness paths from the untrusted entry points: for every function
/// reachable from some `untrusted` function, the shortest call chain
/// (entry first). Unreachable functions are absent.
fn witness_paths(module: &Module, cg: &CallGraph) -> BTreeMap<FuncId, Vec<String>> {
    let mut parent: BTreeMap<FuncId, Option<FuncId>> = BTreeMap::new();
    let mut queue: VecDeque<FuncId> = VecDeque::new();
    for (fi, func) in module.functions.iter().enumerate() {
        if func.attrs.untrusted {
            parent.insert(fi as FuncId, None);
            queue.push_back(fi as FuncId);
        }
    }
    while let Some(f) = queue.pop_front() {
        for callee in cg.callees(f) {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(callee) {
                e.insert(Some(f));
                queue.push_back(callee);
            }
        }
    }
    parent
        .keys()
        .map(|&f| {
            let mut path = Vec::new();
            let mut cur = Some(f);
            while let Some(c) = cur {
                path.push(module.function(c).name.clone());
                cur = parent.get(&c).copied().flatten();
            }
            path.reverse();
            (f, path)
        })
        .collect()
}

/// Runs the adversarial scan over `module`, returning every finding.
///
/// An empty result means: no rights-changing instruction exists outside
/// the sanctioned wrapper shapes, every `sys.*` use is declared and
/// confined to trusted rights, and no `M_T` pointer is published while a
/// gate is open — for the module as written *and* for everything untrusted
/// entry points can reach through direct or indirect calls.
pub fn scan_module(module: &Module) -> Vec<ScanFinding> {
    let cg = CallGraph::build(module);
    let witnesses = witness_paths(module, &cg);
    let entry = entry_masks(module, &cg);
    let mut findings = Vec::new();

    for (fi, func) in module.functions.iter().enumerate() {
        let sanctioned = is_sanctioned_wrapper(module, func);
        let at_entry = block_entry_masks(func, entry[fi]);
        let tainted = trusted_ptr_regs(func);
        let witness = witnesses.get(&(fi as FuncId)).cloned().unwrap_or_default();
        let mut push = |block: usize, index: usize, kind: ScanFindingKind| {
            findings.push(ScanFinding {
                func: func.name.clone(),
                block: block as BlockId,
                index,
                kind,
                witness: witness.clone(),
            });
        };

        for (bi, block) in func.blocks.iter().enumerate() {
            let mut mask = at_entry[bi];
            for (ii, instr) in block.instrs.iter().enumerate() {
                match instr {
                    Instr::GateEnterUntrusted
                    | Instr::GateExitUntrusted
                    | Instr::GateEnterTrusted
                    | Instr::GateExitTrusted
                        if !sanctioned =>
                    {
                        let gate = match instr {
                            Instr::GateEnterUntrusted => "gate.enter.untrusted",
                            Instr::GateExitUntrusted => "gate.exit.untrusted",
                            Instr::GateEnterTrusted => "gate.enter.trusted",
                            _ => "gate.exit.trusted",
                        };
                        push(bi, ii, ScanFindingKind::UnsanctionedGate { gate });
                    }
                    Instr::Sys { kind, .. } => {
                        if mask & UNTRUSTED != 0 {
                            push(
                                bi,
                                ii,
                                ScanFindingKind::SyscallOutsidePolicy {
                                    kind: *kind,
                                    untrusted_rights: true,
                                },
                            );
                        } else if !module.allowed_syscalls.contains(kind) {
                            push(
                                bi,
                                ii,
                                ScanFindingKind::SyscallOutsidePolicy {
                                    kind: *kind,
                                    untrusted_rights: false,
                                },
                            );
                        }
                    }
                    Instr::Store { value: Operand::Reg(r), .. }
                        if mask & UNTRUSTED != 0 && tainted.contains(r) =>
                    {
                        push(bi, ii, ScanFindingKind::GateReentryHazard { reg: *r });
                    }
                    _ => {}
                }
                mask = step_mask(mask, instr);
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use lir::parse_module;

    fn scan_text(text: &str) -> Vec<ScanFinding> {
        scan_module(&parse_module(text).unwrap())
    }

    #[test]
    fn stage1_shapes_scan_clean() {
        // The exact output shapes of expand_annotations and
        // instrument_trusted_entries: both wrapper forms, an impl, a main.
        let findings = scan_text(
            "
untrusted fn @u::f(1) {
bb0:
  %1 = load %0, 0
  ret %1
}
fn @__pkru_gate_u::f(1) {
bb0:
  gate.enter.untrusted
  %1 = call @u::f(%0)
  gate.exit.untrusted
  ret %1
}
fn @__pkru_impl_cb(0) {
bb0:
  ret
}
fn @cb(0) {
bb0:
  gate.enter.trusted
  %0 = call @__pkru_impl_cb()
  gate.exit.trusted
  ret %0
}
fn @main(0) {
bb0:
  %0 = alloc 8
  %1 = call @__pkru_gate_u::f(%0)
  ret %1
}
",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn gadget_in_untrusted_function_flagged_with_witness() {
        // Garmr gadget reuse: the sandbox carries its own rights-restoring
        // gate instruction.
        let findings = scan_text(
            "
untrusted fn @u::evil(1) {
bb0:
  gate.exit.untrusted
  %1 = load %0, 0
  ret %1
}
",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind.code(), "SCAN001");
        assert_eq!(findings[0].witness, vec!["u::evil"]);
    }

    #[test]
    fn gadget_reached_through_indirect_call_flagged() {
        // gatelint's per-function walk never sees this: the gadget sits in
        // a trusted helper only reachable through an icall.
        let findings = scan_text(
            "
fn @gadget(1) {
bb0:
  gate.exit.untrusted
  ret %0
}
untrusted fn @u::entry(1) {
bb0:
  %1 = icall %0(7)
  ret %1
}
fn @main(0) {
bb0:
  %0 = addr @gadget
  ret
}
",
        );
        assert!(
            findings.iter().any(|f| f.kind.code() == "SCAN001"
                && f.func == "gadget"
                && f.witness == vec!["u::entry", "gadget"]),
            "{findings:?}"
        );
    }

    #[test]
    fn undeclared_syscall_flagged_and_declared_trusted_use_accepted() {
        let findings = scan_text(
            "
allow sys.map
fn @main(0) {
bb0:
  %0 = sys.map 4096, 3
  sys.mprotect %0, 4096, 1
  ret %0
}
",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(matches!(
            &findings[0].kind,
            ScanFindingKind::SyscallOutsidePolicy {
                kind: SysKind::Mprotect,
                untrusted_rights: false
            }
        ));
    }

    #[test]
    fn allow_listed_syscall_under_untrusted_rights_still_flagged() {
        // Allow-list widening: declaring the kind must not sanction its use
        // from the sandbox.
        let findings = scan_text(
            "
allow sys.mprotect
untrusted fn @u::evil(1) {
bb0:
  sys.mprotect %0, 4096, 3
  ret
}
",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(matches!(
            &findings[0].kind,
            ScanFindingKind::SyscallOutsidePolicy {
                kind: SysKind::Mprotect,
                untrusted_rights: true
            }
        ));
    }

    #[test]
    fn trusted_pointer_published_in_gate_region_flagged() {
        let findings = scan_text(
            "
untrusted fn @u::f(1) {
bb0:
  ret
}
fn @main(0) {
bb0:
  %0 = alloc 64
  %1 = ualloc 64
  gate.enter.untrusted
  store %1, 0, %0
  %2 = call @u::f(%1)
  gate.exit.untrusted
  ret %2
}
",
        );
        assert!(
            findings
                .iter()
                .any(|f| matches!(f.kind, ScanFindingKind::GateReentryHazard { reg: 0 })),
            "{findings:?}"
        );
        // The raw gates in @main are themselves unsanctioned.
        assert!(findings.iter().any(|f| f.kind.code() == "SCAN001"), "{findings:?}");
    }

    #[test]
    fn callee_of_gate_open_region_inherits_untrusted_rights() {
        // The publication hides one call deep: @leak has no gates of its
        // own but may be entered with untrusted rights in force.
        let findings = scan_text(
            "
untrusted fn @u::f(1) {
bb0:
  ret
}
fn @leak(1) {
bb0:
  %1 = alloc 8
  store %0, 0, %1
  ret
}
fn @main(0) {
bb0:
  %0 = ualloc 64
  gate.enter.untrusted
  call @leak(%0)
  %1 = call @u::f(%0)
  gate.exit.untrusted
  ret %1
}
",
        );
        assert!(
            findings.iter().any(|f| f.func == "leak" && f.kind.code() == "SCAN003"),
            "{findings:?}"
        );
    }

    #[test]
    fn trusted_pointer_as_gated_call_argument_not_flagged() {
        // E1's legitimate shape: the trusted pointer crosses as a register
        // argument to a sanctioned wrapper, never through memory.
        let findings = scan_text(
            "
untrusted fn @clib::process(1) {
bb0:
  %1 = load %0, 0
  ret %1
}
fn @__pkru_gate_clib::process(1) {
bb0:
  gate.enter.untrusted
  %1 = call @clib::process(%0)
  gate.exit.untrusted
  ret %1
}
fn @main(0) {
bb0:
  %0 = alloc 64
  store %0, 0, 1336
  %1 = call @__pkru_gate_clib::process(%0)
  ret %1
}
",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn finding_display_includes_code_and_witness() {
        let f = ScanFinding {
            func: "gadget".into(),
            block: 0,
            index: 2,
            kind: ScanFindingKind::UnsanctionedGate { gate: "gate.exit.untrusted" },
            witness: vec!["u::entry".into(), "gadget".into()],
        };
        assert_eq!(
            f.to_string(),
            "SCAN001 @gadget bb0: unsanctioned gate.exit.untrusted at index 2 \
             [reachable: @u::entry -> @gadget]"
        );
    }
}
