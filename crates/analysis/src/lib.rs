//! Static analyses over LIR modules (the paper's road-not-taken, §4.3).
//!
//! PKRU-Safe chose *dynamic* profiling to discover which trusted
//! allocation sites leak into the untrusted compartment because
//! whole-program static pointer analysis over LLVM IR was judged too
//! imprecise. The repo's LIR is small enough to analyze soundly, so this
//! crate builds the static counterpart and lets each side check the other:
//!
//! - [`escape::analyze`] — an interprocedural, flow-insensitive,
//!   Andersen-style points-to/taint analysis computing the *may-escape*
//!   set: every labeled allocation site whose objects may be dereferenced
//!   while the untrusted compartment's rights are in force. The result is
//!   a [`StaticProfile`] in the same JSON schema as the dynamic
//!   [`pkru_provenance::Profile`], so the enforcement build can consume
//!   either.
//! - [`check_profile_soundness`] — the two-sided check: every
//!   dynamically-observed site must appear in the static may-escape set;
//!   a violation is a soundness bug in one of the two analyses.
//! - [`gatelint::lint_module`] — a path-sensitive gate-integrity lint in
//!   the spirit of ERIM/Garmr: gates balanced on every path, untrusted
//!   calls bracketed, no gate or provenance hooks reachable inside the
//!   untrusted compartment, and no trusted-pool allocation while the
//!   untrusted compartment is active.
//! - [`scan::scan_module`] — the whole-module adversarial complement to
//!   the lint: treats untrusted functions as attacker-controlled and walks
//!   the callgraph for unsanctioned gate gadgets, out-of-policy `sys.*`
//!   primitives, and gate-region pointer-publication hazards, each finding
//!   carrying a reachability witness path.
//! - [`redteam`] — a seeded generator of Garmr-shaped attack modules plus
//!   a harness asserting every attack is rejected statically by the scan
//!   or caught dynamically under the quarantine policy.

mod callgraph;
mod diag;
mod escape;
mod gatelint;
pub mod redteam;
mod scan;

pub use callgraph::CallGraph;
pub use diag::{LintError, LintErrorKind};
pub use escape::{analyze, check_profile_soundness, EscapeAnalysis, StaticProfile};
pub use gatelint::lint_module;
pub use scan::{scan_module, ScanFinding, ScanFindingKind};
