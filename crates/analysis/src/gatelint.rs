//! Path-sensitive gate-integrity lint.
//!
//! The compiler passes are supposed to leave gates perfectly balanced and
//! every compartment crossing bracketed; this lint re-derives that from the
//! instruction stream alone, so it catches both pass bugs and hand-edited
//! modules. Per function it walks the CFG tracking the open-gate state
//! `(untrusted depth, trusted depth, current rights)` along each path:
//!
//! - every `gate.exit.*` must close a matching `gate.enter.*`;
//! - no path may return with a gate region still open;
//! - joins must agree on the gate state (the discipline is
//!   path-independent by construction, so disagreement is a bug);
//! - direct trusted→untrusted calls must happen with untrusted rights in
//!   force (i.e. inside a T→U gate region);
//! - indirect calls are resolved conservatively (arity-matched
//!   address-taken functions): with trusted rights they must not be able to
//!   reach an untrusted function, and with untrusted rights they must not
//!   be able to reach a trusted function lacking a `gate.enter.trusted`
//!   prologue;
//! - untrusted functions contain no gate or provenance instructions;
//! - no trusted-pool allocation may execute while the untrusted
//!   compartment is active.

use std::collections::{BTreeSet, HashMap};

use lir::{address_taken, BlockId, FuncId, Function, Instr, Module, SiteDomain};

use crate::diag::{LintError, LintErrorKind};

/// Rights in force at a program point, tracked alongside the depths so
/// nested `enter.trusted` inside a T→U region is modeled correctly.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CurRights {
    Trusted,
    Untrusted,
}

/// The path state: open gate depths plus current rights.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct GateState {
    untrusted_depth: u32,
    trusted_depth: u32,
    rights: CurRights,
}

impl GateState {
    fn entry() -> GateState {
        GateState { untrusted_depth: 0, trusted_depth: 0, rights: CurRights::Trusted }
    }
}

/// Lints `module`, returning every gate-integrity defect found.
pub fn lint_module(module: &Module) -> Result<(), Vec<LintError>> {
    let mut errors = Vec::new();
    let taken = address_taken(module);
    for func in &module.functions {
        if func.attrs.untrusted {
            lint_untrusted_function(func, &mut errors);
        } else {
            lint_trusted_function(module, func, &taken, &mut errors);
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Untrusted code must contain neither gates nor provenance hooks; with
/// those ruled out there is no gate state to track.
fn lint_untrusted_function(func: &Function, errors: &mut Vec<LintError>) {
    for (bi, block) in func.blocks.iter().enumerate() {
        for (ii, instr) in block.instrs.iter().enumerate() {
            let kind = match instr {
                Instr::GateEnterUntrusted
                | Instr::GateExitUntrusted
                | Instr::GateEnterTrusted
                | Instr::GateExitTrusted => Some(LintErrorKind::GateInUntrustedFunction),
                Instr::ProvLogAlloc { .. }
                | Instr::ProvLogRealloc { .. }
                | Instr::ProvLogDealloc { .. } => Some(LintErrorKind::ProvHookInUntrustedFunction),
                _ => None,
            };
            if let Some(kind) = kind {
                errors.push(LintError {
                    func: func.name.clone(),
                    block: bi as BlockId,
                    index: ii,
                    kind,
                });
            }
        }
    }
}

/// Whether a function's first instruction is a U→T trusted-entry gate, the
/// shape `instrument_trusted_entries` gives every callable trusted entry
/// point. A trusted function *without* that prologue must never be reached
/// while untrusted rights are in force.
fn begins_with_trusted_entry(func: &Function) -> bool {
    func.blocks
        .first()
        .and_then(|b| b.instrs.first())
        .is_some_and(|i| matches!(i, Instr::GateEnterTrusted))
}

fn lint_trusted_function(
    module: &Module,
    func: &Function,
    taken: &BTreeSet<FuncId>,
    errors: &mut Vec<LintError>,
) {
    if func.blocks.is_empty() {
        return;
    }
    let error = |errors: &mut Vec<LintError>, block: BlockId, index: usize, kind| {
        errors.push(LintError { func: func.name.clone(), block, index, kind });
    };

    // DFS over blocks carrying the path state. The gate discipline must be
    // path-independent, so each block has exactly one legal entry state;
    // a second, different one is reported once and not explored (which
    // also bounds the walk — every block is entered at most twice).
    let mut seen: HashMap<BlockId, GateState> = HashMap::new();
    let mut inconsistent_reported: Vec<BlockId> = Vec::new();
    let mut work: Vec<(BlockId, GateState)> = vec![(0, GateState::entry())];

    while let Some((bi, entry_state)) = work.pop() {
        match seen.get(&bi) {
            Some(previous) if *previous == entry_state => continue,
            Some(_) => {
                if !inconsistent_reported.contains(&bi) {
                    inconsistent_reported.push(bi);
                    error(errors, bi, 0, LintErrorKind::InconsistentGateState);
                }
                continue;
            }
            None => {
                seen.insert(bi, entry_state);
            }
        }

        let mut state = entry_state;
        let block = &func.blocks[bi as usize];
        for (ii, instr) in block.instrs.iter().enumerate() {
            match instr {
                Instr::GateEnterUntrusted => {
                    state.untrusted_depth += 1;
                    state.rights = CurRights::Untrusted;
                }
                Instr::GateExitUntrusted => {
                    if state.untrusted_depth == 0 {
                        error(
                            errors,
                            bi,
                            ii,
                            LintErrorKind::UnbalancedGateExit { gate: "gate.exit.untrusted" },
                        );
                    } else {
                        state.untrusted_depth -= 1;
                    }
                    state.rights = CurRights::Trusted;
                }
                Instr::GateEnterTrusted => {
                    state.trusted_depth += 1;
                    state.rights = CurRights::Trusted;
                }
                Instr::GateExitTrusted => {
                    if state.trusted_depth == 0 {
                        error(
                            errors,
                            bi,
                            ii,
                            LintErrorKind::UnbalancedGateExit { gate: "gate.exit.trusted" },
                        );
                    } else {
                        state.trusted_depth -= 1;
                    }
                    state.rights = CurRights::Untrusted;
                }
                Instr::Call { callee, .. } => {
                    let untrusted_callee =
                        module.find(callee).is_some_and(|id| module.function(id).attrs.untrusted);
                    if untrusted_callee && state.rights == CurRights::Trusted {
                        error(
                            errors,
                            bi,
                            ii,
                            LintErrorKind::UngatedUntrustedCall { callee: callee.clone() },
                        );
                    }
                }
                Instr::CallIndirect { args, .. } => {
                    // The conservative target set: arity-matched
                    // address-taken functions (the callgraph's indirect
                    // resolution). Report each hazardous may-target.
                    let arity = args.len() as u32;
                    for target in taken.iter().copied() {
                        let tf = module.function(target);
                        if tf.params != arity {
                            continue;
                        }
                        if tf.attrs.untrusted && state.rights == CurRights::Trusted {
                            error(
                                errors,
                                bi,
                                ii,
                                LintErrorKind::UngatedUntrustedIndirectCall {
                                    callee: tf.name.clone(),
                                },
                            );
                        } else if !tf.attrs.untrusted
                            && state.rights == CurRights::Untrusted
                            && !begins_with_trusted_entry(tf)
                        {
                            error(
                                errors,
                                bi,
                                ii,
                                LintErrorKind::IndirectCallToUngatedTrusted {
                                    callee: tf.name.clone(),
                                },
                            );
                        }
                    }
                }
                Instr::Alloc { domain: SiteDomain::Trusted, .. }
                    if state.rights == CurRights::Untrusted =>
                {
                    error(errors, bi, ii, LintErrorKind::TrustedAllocInUntrustedRegion);
                }
                Instr::Ret { .. } if state.untrusted_depth != 0 || state.trusted_depth != 0 => {
                    error(
                        errors,
                        bi,
                        ii,
                        LintErrorKind::UnmatchedGateAtReturn {
                            untrusted_depth: state.untrusted_depth,
                            trusted_depth: state.trusted_depth,
                        },
                    );
                }
                _ => {}
            }
        }
        for succ in func.successors(bi) {
            if (succ as usize) < func.blocks.len() {
                work.push((succ, state));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lir::parse_module;

    fn lint_text(text: &str) -> Result<(), Vec<LintError>> {
        lint_module(&parse_module(text).unwrap())
    }

    #[test]
    fn well_gated_module_is_clean() {
        // The shape the passes emit: untrusted body, T→U wrapper,
        // trusted-entry wrapper around an impl.
        lint_text(
            "
untrusted fn @u::f(1) {
bb0:
  %1 = load %0, 0
  ret %1
}
fn @__pkru_gate_u::f(1) {
bb0:
  gate.enter.untrusted
  %1 = call @u::f(%0)
  gate.exit.untrusted
  ret %1
}
fn @__pkru_impl_cb(0) {
bb0:
  ret
}
fn @cb(0) {
bb0:
  gate.enter.trusted
  %0 = call @__pkru_impl_cb()
  gate.exit.trusted
  ret %0
}
fn @main(0) {
bb0:
  %0 = alloc 8
  %1 = call @__pkru_gate_u::f(%0)
  ret %1
}
",
        )
        .unwrap();
    }

    #[test]
    fn unbalanced_exit_flagged() {
        let errs = lint_text("fn @f(0) {\nbb0:\n  gate.exit.untrusted\n  ret\n}").unwrap_err();
        assert!(
            matches!(
                &errs[0].kind,
                LintErrorKind::UnbalancedGateExit { gate: "gate.exit.untrusted" }
            ),
            "{errs:?}"
        );
    }

    #[test]
    fn open_gate_at_return_flagged() {
        let errs = lint_text("fn @f(0) {\nbb0:\n  gate.enter.untrusted\n  ret\n}").unwrap_err();
        assert!(
            matches!(
                &errs[0].kind,
                LintErrorKind::UnmatchedGateAtReturn { untrusted_depth: 1, trusted_depth: 0 }
            ),
            "{errs:?}"
        );
    }

    #[test]
    fn ungated_untrusted_call_flagged() {
        let errs = lint_text(
            "
untrusted fn @u::f(0) {
bb0:
  ret
}
fn @main(0) {
bb0:
  %0 = call @u::f()
  ret %0
}
",
        )
        .unwrap_err();
        assert!(
            matches!(&errs[0].kind, LintErrorKind::UngatedUntrustedCall { callee } if callee == "u::f"),
            "{errs:?}"
        );
    }

    #[test]
    fn ungated_indirect_untrusted_call_flagged() {
        // Regression: the icall may reach @u::f (address-taken, arity 1)
        // with trusted rights in force; this used to pass silently.
        let errs = lint_text(
            "
untrusted fn @u::f(1) {
bb0:
  ret %0
}
fn @main(0) {
bb0:
  %0 = addr @u::f
  %1 = icall %0(7)
  ret %1
}
",
        )
        .unwrap_err();
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(
            matches!(&errs[0].kind, LintErrorKind::UngatedUntrustedIndirectCall { callee } if callee == "u::f"),
            "{errs:?}"
        );
        assert_eq!(
            errs[0].to_string(),
            "@main bb0: ungated indirect call at index 1 may target untrusted @u::f"
        );
    }

    #[test]
    fn indirect_call_in_gate_region_to_ungated_trusted_flagged() {
        // Inside the T→U region an icall may land on @helper, trusted code
        // with no trusted-entry prologue — it would run with the sandbox's
        // PKRU.
        let errs = lint_text(
            "
fn @helper(1) {
bb0:
  %1 = alloc 8
  ret %1
}
fn @main(0) {
bb0:
  %0 = addr @helper
  gate.enter.untrusted
  %1 = icall %0(7)
  gate.exit.untrusted
  ret %1
}
",
        )
        .unwrap_err();
        assert!(
            errs.iter().any(|e| matches!(
                &e.kind,
                LintErrorKind::IndirectCallToUngatedTrusted { callee } if callee == "helper"
            )),
            "{errs:?}"
        );
    }

    #[test]
    fn indirect_call_to_gated_trusted_entry_accepted() {
        // The instrumented shape: the address-taken trusted entry starts
        // with gate.enter.trusted, so reaching it from a gate-open region
        // is sanctioned.
        lint_text(
            "
fn @__pkru_impl_cb(1) {
bb0:
  ret %0
}
fn @cb(1) {
bb0:
  gate.enter.trusted
  %1 = call @__pkru_impl_cb(%0)
  gate.exit.trusted
  ret %1
}
untrusted fn @u::f(0) {
bb0:
  ret
}
fn @main(0) {
bb0:
  %0 = addr @cb
  gate.enter.untrusted
  %1 = icall %0(7)
  gate.exit.untrusted
  ret %1
}
",
        )
        .unwrap();
    }

    #[test]
    fn trusted_alloc_in_untrusted_region_flagged() {
        let errs = lint_text(
            "
untrusted fn @u::f(0) {
bb0:
  ret
}
fn @main(0) {
bb0:
  gate.enter.untrusted
  %0 = call @u::f()
  %1 = alloc 8
  gate.exit.untrusted
  ret %1
}
",
        )
        .unwrap_err();
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(matches!(&errs[0].kind, LintErrorKind::TrustedAllocInUntrustedRegion));
        assert_eq!(
            errs[0].to_string(),
            "@main bb0: trusted-pool alloc at index 2 while the untrusted compartment is active"
        );
    }

    #[test]
    fn untrusted_alloc_in_untrusted_region_allowed() {
        lint_text(
            "
untrusted fn @u::f(0) {
bb0:
  ret
}
fn @main(0) {
bb0:
  gate.enter.untrusted
  %0 = call @u::f()
  %1 = ualloc 8
  gate.exit.untrusted
  ret %1
}
",
        )
        .unwrap();
    }

    #[test]
    fn gates_and_prov_hooks_in_untrusted_code_flagged() {
        let errs = lint_text(
            "
untrusted fn @u::f(0) {
bb0:
  gate.exit.untrusted
  %0 = alloc 8
  prov.log_alloc %0, 8, f0.b0.s0
  ret
}
",
        )
        .unwrap_err();
        assert!(errs.iter().any(|e| matches!(e.kind, LintErrorKind::GateInUntrustedFunction)));
        assert!(
            errs.iter().any(|e| matches!(e.kind, LintErrorKind::ProvHookInUntrustedFunction)),
            "{errs:?}"
        );
    }

    #[test]
    fn inconsistent_join_flagged() {
        // bb2 is reachable with the gate both open and closed.
        let errs = lint_text(
            "
fn @f(1) {
bb0:
  brif %0, bb1, bb2
bb1:
  gate.enter.untrusted
  br bb2
bb2:
  ret
}
",
        )
        .unwrap_err();
        assert!(
            errs.iter().any(|e| matches!(e.kind, LintErrorKind::InconsistentGateState)),
            "{errs:?}"
        );
    }

    #[test]
    fn balanced_gates_across_blocks_accepted() {
        lint_text(
            "
untrusted fn @u::f(0) {
bb0:
  ret
}
fn @f(1) {
bb0:
  gate.enter.untrusted
  brif %0, bb1, bb2
bb1:
  %1 = call @u::f()
  br bb3
bb2:
  %1 = call @u::f()
  br bb3
bb3:
  gate.exit.untrusted
  ret %1
}
",
        )
        .unwrap();
    }

    #[test]
    fn loops_terminate_and_stay_consistent() {
        lint_text(
            "
fn @loop(1) {
bb0:
  %1 = const 0
  br bb1
bb1:
  %1 = add %1, 1
  %2 = lt %1, %0
  brif %2, bb1, bb2
bb2:
  ret %1
}
",
        )
        .unwrap();
    }
}
