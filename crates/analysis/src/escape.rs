//! Interprocedural escape analysis: which allocation sites may leak to `U`.
//!
//! The dynamic profiler records a site when untrusted code *dereferences*
//! one of its objects (only loads and stores are rights-checked). The
//! static counterpart must therefore over-approximate exactly that event:
//!
//! > site `s` may-escape ⇔ some `load`/`store` that may execute with
//! > untrusted rights may dereference a pointer into an object of `s`.
//!
//! Two fixpoints compose the answer:
//!
//! 1. **Points-to** — a flow- and field-insensitive Andersen-style
//!    propagation. Abstract objects are the labeled allocation sites
//!    ([`AllocId`]); pointer values flow through moves, arithmetic,
//!    loads/stores (via one summary cell per site), direct calls, returns,
//!    and indirect calls resolved against arity-matched address-taken
//!    functions.
//! 2. **Rights** — which instructions may execute while the untrusted
//!    compartment's PKRU is in force: everything in untrusted functions,
//!    everything between a `gate.enter.untrusted` and its exit, and
//!    everything in functions transitively callable from such code without
//!    crossing a `gate.enter.trusted` entry wrapper.
//!
//! Both are monotone over finite lattices, so the fixpoints exist and the
//! result is a sound over-approximation of the dynamic profile — the
//! property [`check_profile_soundness`] enforces.

use std::collections::BTreeSet;
use std::path::Path;

use lir::{FuncId, Function, Instr, Module, Operand, Reg};
use pkru_provenance::{AllocId, Profile, ProfileError};

use crate::callgraph::CallGraph;

/// The result of [`analyze`].
#[derive(Clone, Debug)]
pub struct EscapeAnalysis {
    /// Sites whose objects may be dereferenced by the untrusted
    /// compartment — the static analogue of the dynamic profile.
    pub may_escape: BTreeSet<AllocId>,
    /// Functions any part of which may execute with untrusted rights.
    pub may_run_untrusted: BTreeSet<FuncId>,
    /// Total labeled allocation sites in the module (the census
    /// denominator).
    pub total_sites: usize,
}

impl EscapeAnalysis {
    /// Packages the may-escape set as a profile-schema artifact.
    pub fn static_profile(&self) -> StaticProfile {
        let mut profile = Profile::new();
        for site in &self.may_escape {
            profile.record(*site);
        }
        StaticProfile { profile }
    }
}

/// A statically computed profile, interchangeable with the dynamic one.
///
/// Serializes to the exact JSON schema of [`pkru_provenance::Profile`]
/// (with `faults_observed` fixed at 0, since nothing ran), so
/// `apply_profile` and the `enforce` CLI stage consume either artifact
/// without knowing which kind of analysis produced it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StaticProfile {
    /// The underlying profile; `shared_sites` is the may-escape set.
    pub profile: Profile,
}

impl StaticProfile {
    /// Whether `id` is in the static may-escape set.
    pub fn contains(&self, id: AllocId) -> bool {
        self.profile.contains(id)
    }

    /// Number of may-escape sites.
    pub fn len(&self) -> usize {
        self.profile.len()
    }

    /// Whether no site may escape.
    pub fn is_empty(&self) -> bool {
        self.profile.is_empty()
    }

    /// Serializes in the shared profile schema.
    pub fn to_json(&self) -> String {
        self.profile.to_json()
    }

    /// Writes the profile JSON to `path`.
    pub fn save(&self, path: &Path) -> Result<(), ProfileError> {
        self.profile.save(path)
    }
}

/// Checks that the static may-escape set covers the dynamic profile.
///
/// Every dynamically-observed shared site must be statically predicted;
/// a site that faulted at runtime but is absent from `static_profile`
/// means one of the two analyses is wrong (the static one missed a flow,
/// or the dynamic one recorded garbage). Returns the missing sites.
pub fn check_profile_soundness(
    static_profile: &StaticProfile,
    dynamic: &Profile,
) -> Result<(), Vec<AllocId>> {
    let missing: Vec<AllocId> = dynamic.sites().filter(|s| !static_profile.contains(*s)).collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(missing)
    }
}

/// Runs the escape analysis over `module`.
///
/// The module is expected to be the *annotated build* (gates inserted,
/// sites labeled); running it earlier is harmless but finds no labeled
/// sites to report.
pub fn analyze(module: &Module) -> EscapeAnalysis {
    let graph = CallGraph::build(module);
    let points_to = points_to_fixpoint(module, &graph);
    let rights = rights_fixpoint(module, &graph);

    // A site escapes when a load/store that may run untrusted may
    // dereference it.
    let mut may_escape = BTreeSet::new();
    for (fi, func) in module.functions.iter().enumerate() {
        for (bi, block) in func.blocks.iter().enumerate() {
            let mut state = rights.block_entry[fi][bi];
            for instr in &block.instrs {
                if state & U != 0 {
                    match instr {
                        Instr::Load { addr, .. } | Instr::Store { addr, .. } => {
                            may_escape.extend(points_to.of_operand(fi, *addr).iter().copied());
                        }
                        _ => {}
                    }
                }
                state = step_rights(state, instr);
            }
        }
    }

    let total_sites = module
        .functions
        .iter()
        .flat_map(|f| &f.blocks)
        .flat_map(|b| &b.instrs)
        .filter(|i| matches!(i, Instr::Alloc { id: Some(_), .. }))
        .count();

    EscapeAnalysis { may_escape, may_run_untrusted: rights.may_run_untrusted, total_sites }
}

// ---------------------------------------------------------------------------
// Points-to fixpoint
// ---------------------------------------------------------------------------

#[derive(Default)]
struct PointsTo {
    /// `regs[f][r]` — sites register `r` of function `f` may point into.
    regs: Vec<Vec<BTreeSet<AllocId>>>,
    /// One field-insensitive summary cell per site: what pointers may be
    /// stored inside its objects.
    heap: std::collections::BTreeMap<AllocId, BTreeSet<AllocId>>,
    /// `rets[f]` — sites function `f` may return pointers into.
    rets: Vec<BTreeSet<AllocId>>,
}

impl PointsTo {
    fn of_operand(&self, func: usize, op: Operand) -> &BTreeSet<AllocId> {
        static EMPTY: BTreeSet<AllocId> = BTreeSet::new();
        match op {
            Operand::Reg(r) => self.regs[func].get(r as usize).unwrap_or(&EMPTY),
            Operand::Imm(_) => &EMPTY,
        }
    }

    /// Union `sites` into `regs[func][reg]`; true if anything was new.
    fn add(&mut self, func: usize, reg: Reg, sites: &BTreeSet<AllocId>) -> bool {
        let Some(slot) = self.regs[func].get_mut(reg as usize) else {
            return false;
        };
        let before = slot.len();
        slot.extend(sites.iter().copied());
        slot.len() != before
    }
}

fn points_to_fixpoint(module: &Module, graph: &CallGraph) -> PointsTo {
    let mut pt = PointsTo {
        regs: module
            .functions
            .iter()
            .map(|f| vec![BTreeSet::new(); f.num_regs.max(f.params) as usize])
            .collect(),
        heap: Default::default(),
        rets: vec![BTreeSet::new(); module.functions.len()],
    };

    let mut changed = true;
    while changed {
        changed = false;
        for (fi, func) in module.functions.iter().enumerate() {
            for block in &func.blocks {
                for instr in &block.instrs {
                    changed |= transfer(module, graph, &mut pt, fi, instr);
                }
            }
        }
    }
    pt
}

/// One flow-insensitive transfer step; returns whether any set grew.
fn transfer(
    module: &Module,
    graph: &CallGraph,
    pt: &mut PointsTo,
    fi: usize,
    instr: &Instr,
) -> bool {
    let mut changed = false;
    match instr {
        Instr::Alloc { dst, id: Some(id), .. } => {
            let site = BTreeSet::from([*id]);
            changed |= pt.add(fi, *dst, &site);
        }
        // Unlabeled allocations have no identity to track.
        Instr::Alloc { id: None, .. } => {}
        Instr::Realloc { dst, ptr, .. } => {
            // The object may move but keeps its allocation site.
            let sites = pt.of_operand(fi, *ptr).clone();
            changed |= pt.add(fi, *dst, &sites);
        }
        Instr::Bin { dst, lhs, rhs, .. } => {
            // Pointer arithmetic: the result may point wherever either
            // operand did.
            let mut sites = pt.of_operand(fi, *lhs).clone();
            sites.extend(pt.of_operand(fi, *rhs).iter().copied());
            changed |= pt.add(fi, *dst, &sites);
        }
        Instr::Load { dst, addr, .. } => {
            let objects = pt.of_operand(fi, *addr).clone();
            let mut loaded = BTreeSet::new();
            for o in &objects {
                if let Some(cell) = pt.heap.get(o) {
                    loaded.extend(cell.iter().copied());
                }
            }
            changed |= pt.add(fi, *dst, &loaded);
        }
        Instr::Store { addr, value, .. } => {
            let objects = pt.of_operand(fi, *addr).clone();
            let stored = pt.of_operand(fi, *value).clone();
            for o in objects {
                let cell = pt.heap.entry(o).or_default();
                let before = cell.len();
                cell.extend(stored.iter().copied());
                changed |= cell.len() != before;
            }
        }
        Instr::Call { dst, callee, args } => {
            if let Some(target) = module.find(callee) {
                changed |= bind_call(pt, fi, target, dst, args);
            }
        }
        Instr::CallIndirect { dst, target: _, args } => {
            let targets: Vec<FuncId> = graph.indirect_targets(module, args.len() as u32).collect();
            for target in targets {
                changed |= bind_call(pt, fi, target, dst, args);
            }
        }
        Instr::Ret { value: Some(v) } => {
            let sites = pt.of_operand(fi, *v).clone();
            let before = pt.rets[fi].len();
            pt.rets[fi].extend(sites);
            changed |= pt.rets[fi].len() != before;
        }
        _ => {}
    }
    changed
}

/// Flows argument pointers into callee parameters and the callee's return
/// set back into the destination register.
fn bind_call(
    pt: &mut PointsTo,
    caller: usize,
    callee: FuncId,
    dst: &Option<Reg>,
    args: &[Operand],
) -> bool {
    let callee = callee as usize;
    let mut changed = false;
    for (i, arg) in args.iter().enumerate() {
        let sites = pt.of_operand(caller, *arg).clone();
        if !sites.is_empty() && i < pt.regs[callee].len() {
            changed |= pt.add(callee, i as Reg, &sites);
        }
    }
    if let Some(d) = dst {
        let rets = pt.rets[callee].clone();
        changed |= pt.add(caller, *d, &rets);
    }
    changed
}

// ---------------------------------------------------------------------------
// Rights fixpoint
// ---------------------------------------------------------------------------

/// Rights-state bitmask: the instruction may execute with trusted rights.
const T: u8 = 1;
/// Rights-state bitmask: the instruction may execute with untrusted rights.
const U: u8 = 2;

struct Rights {
    /// `block_entry[f][b]` — possible rights states on entry to block `b`.
    block_entry: Vec<Vec<u8>>,
    /// Functions any part of which may execute untrusted.
    may_run_untrusted: BTreeSet<FuncId>,
}

/// Rights after executing `instr` in state `state`.
///
/// Gate semantics follow the runtime: enter-untrusted drops to `U`,
/// exit-untrusted restores the trusted caller's rights, and the
/// trusted-entry pair is the mirror image. Unbalanced nesting is the
/// lint's concern, not this approximation's.
fn step_rights(state: u8, instr: &Instr) -> u8 {
    match instr {
        Instr::GateEnterUntrusted => U,
        Instr::GateExitUntrusted => T,
        Instr::GateEnterTrusted => T,
        Instr::GateExitTrusted => U,
        _ => state,
    }
}

/// Whether calls into `func` immediately re-establish trusted rights (the
/// trusted-entry wrappers synthesized by `instrument_trusted_entries`).
fn gates_on_entry(func: &Function) -> bool {
    matches!(func.blocks.first().and_then(|b| b.instrs.first()), Some(Instr::GateEnterTrusted))
}

fn rights_fixpoint(module: &Module, graph: &CallGraph) -> Rights {
    // Functions that may be *entered* while untrusted rights are in force.
    let mut entered_untrusted: BTreeSet<FuncId> = module
        .functions
        .iter()
        .enumerate()
        .filter(|(_, f)| f.attrs.untrusted)
        .map(|(i, _)| i as FuncId)
        .collect();

    let mut block_entry: Vec<Vec<u8>> =
        module.functions.iter().map(|f| vec![0u8; f.blocks.len()]).collect();

    loop {
        let mut changed = false;
        for (fi, func) in module.functions.iter().enumerate() {
            if func.blocks.is_empty() {
                continue;
            }
            let mut entry_state = if func.attrs.untrusted { U } else { T };
            if entered_untrusted.contains(&(fi as FuncId)) {
                entry_state |= U;
            }
            if block_entry[fi][0] | entry_state != block_entry[fi][0] {
                block_entry[fi][0] |= entry_state;
                changed = true;
            }
            // Propagate states through the CFG (join = bit union).
            let mut work: Vec<u32> = vec![0];
            while let Some(bi) = work.pop() {
                let mut state = block_entry[fi][bi as usize];
                let block = &func.blocks[bi as usize];
                for instr in &block.instrs {
                    // Calls executing with untrusted rights enter their
                    // callees untrusted — unless the callee gates on entry.
                    if state & U != 0 {
                        let callees: Vec<FuncId> = match instr {
                            Instr::Call { callee, .. } => module.find(callee).into_iter().collect(),
                            Instr::CallIndirect { args, .. } => {
                                graph.indirect_targets(module, args.len() as u32).collect()
                            }
                            _ => Vec::new(),
                        };
                        for c in callees {
                            if !gates_on_entry(module.function(c)) && entered_untrusted.insert(c) {
                                changed = true;
                            }
                        }
                    }
                    state = step_rights(state, instr);
                }
                for succ in func.successors(bi) {
                    let si = succ as usize;
                    if si < func.blocks.len() && block_entry[fi][si] | state != block_entry[fi][si]
                    {
                        block_entry[fi][si] |= state;
                        work.push(succ);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // A function "may run untrusted" if any of its blocks can be reached
    // in a U state (covers both untrusted functions and trusted code
    // inside an inline gate region).
    let mut may_run_untrusted = BTreeSet::new();
    for (fi, func) in module.functions.iter().enumerate() {
        let any_u = func.blocks.iter().enumerate().any(|(bi, block)| {
            let mut state = block_entry[fi][bi];
            if state & U != 0 {
                return true;
            }
            for instr in &block.instrs {
                state = step_rights(state, instr);
                if state & U != 0 {
                    return true;
                }
            }
            false
        });
        if any_u {
            may_run_untrusted.insert(fi as FuncId);
        }
    }

    Rights { block_entry, may_run_untrusted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lir::parse_module;

    /// The E1 program after (hand-applied) annotation expansion and site
    /// labeling: @main's first alloc is passed to the gated untrusted
    /// library, the second stays private.
    const GATED_E1: &str = "
untrusted fn @clib::process(1) {
bb0:
  %1 = load %0, 0
  %2 = add %1, 1
  store %0, 0, %2
  ret %2
}
fn @__pkru_gate_clib::process(1) {
bb0:
  gate.enter.untrusted
  %1 = call @clib::process(%0)
  gate.exit.untrusted
  ret %1
}
fn @main(0) {
bb0:
  %0 = alloc 64
  %1 = alloc 64
  store %0, 0, 1336
  store %1, 0, 41
  %2 = call @__pkru_gate_clib::process(%0)
  %3 = load %1, 0
  ret %2
}
";

    fn label_sites(module: &mut lir::Module) {
        // Mirror of the compiler pass: (func, block, in-block index).
        for (fi, func) in module.functions.iter_mut().enumerate() {
            if func.attrs.untrusted {
                continue;
            }
            for (bi, block) in func.blocks.iter_mut().enumerate() {
                let mut site = 0;
                for instr in &mut block.instrs {
                    if let Instr::Alloc { id, .. } = instr {
                        *id = Some(AllocId::new(fi as u32, bi as u32, site));
                        site += 1;
                    }
                }
            }
        }
    }

    fn analyzed(text: &str) -> (lir::Module, EscapeAnalysis) {
        let mut m = parse_module(text).unwrap();
        label_sites(&mut m);
        let a = analyze(&m);
        (m, a)
    }

    #[test]
    fn shared_site_escapes_private_stays() {
        let (m, a) = analyzed(GATED_E1);
        let main = m.find("main").unwrap();
        assert!(a.may_escape.contains(&AllocId::new(main, 0, 0)), "{:?}", a.may_escape);
        assert!(!a.may_escape.contains(&AllocId::new(main, 0, 1)), "{:?}", a.may_escape);
        assert_eq!(a.total_sites, 2);
        // The untrusted function runs untrusted; main never does.
        assert!(a.may_run_untrusted.contains(&m.find("clib::process").unwrap()));
        assert!(!a.may_run_untrusted.contains(&main));
    }

    #[test]
    fn escape_through_heap_indirection() {
        // main stores the payload pointer *inside* a shared carrier
        // object; the untrusted side loads it out and dereferences.
        let text = "
untrusted fn @u::deref(1) {
bb0:
  %1 = load %0, 0
  %2 = load %1, 0
  ret %2
}
fn @__pkru_gate_u::deref(1) {
bb0:
  gate.enter.untrusted
  %1 = call @u::deref(%0)
  gate.exit.untrusted
  ret %1
}
fn @main(0) {
bb0:
  %0 = alloc 16
  %1 = alloc 16
  store %0, 0, %1
  %2 = call @__pkru_gate_u::deref(%0)
  ret %2
}
";
        let (m, a) = analyzed(text);
        let main = m.find("main").unwrap();
        assert!(a.may_escape.contains(&AllocId::new(main, 0, 0)), "carrier escapes");
        assert!(a.may_escape.contains(&AllocId::new(main, 0, 1)), "payload escapes via load");
    }

    #[test]
    fn pointer_arithmetic_tracked() {
        let text = "
untrusted fn @u::read(1) {
bb0:
  %1 = load %0, 0
  ret %1
}
fn @__pkru_gate_u::read(1) {
bb0:
  gate.enter.untrusted
  %1 = call @u::read(%0)
  gate.exit.untrusted
  ret %1
}
fn @main(0) {
bb0:
  %0 = alloc 64
  %1 = add %0, 8
  %2 = call @__pkru_gate_u::read(%1)
  ret %2
}
";
        let (m, a) = analyzed(text);
        assert!(a.may_escape.contains(&AllocId::new(m.find("main").unwrap(), 0, 0)));
    }

    #[test]
    fn indirect_calls_resolve_to_address_taken() {
        // The untrusted side invokes a callback pointer; the callback
        // dereferences its argument without an entry gate, so the argument
        // escapes.
        let text = "
fn @cb(1) {
bb0:
  %1 = load %0, 0
  ret %1
}
untrusted fn @u::invoke(2) {
bb0:
  %2 = icall %0(%1)
  ret %2
}
fn @__pkru_gate_u::invoke(2) {
bb0:
  gate.enter.untrusted
  %2 = call @u::invoke(%0, %1)
  gate.exit.untrusted
  ret %2
}
fn @main(0) {
bb0:
  %0 = addr @cb
  %1 = alloc 8
  %2 = call @__pkru_gate_u::invoke(%0, %1)
  ret %2
}
";
        let (m, a) = analyzed(text);
        assert!(a.may_escape.contains(&AllocId::new(m.find("main").unwrap(), 0, 0)));
        // The ungated callback inherits untrusted rights.
        assert!(a.may_run_untrusted.contains(&m.find("cb").unwrap()));
    }

    #[test]
    fn trusted_entry_gate_stops_untrusted_propagation() {
        // Same shape, but the callback is fronted by a trusted-entry
        // gate: the impl runs trusted, so nothing escapes.
        let text = "
fn @__pkru_impl_cb(1) {
bb0:
  %1 = load %0, 0
  ret %1
}
fn @cb(1) {
bb0:
  gate.enter.trusted
  %1 = call @__pkru_impl_cb(%0)
  gate.exit.trusted
  ret %1
}
untrusted fn @u::invoke(2) {
bb0:
  %2 = icall %0(%1)
  ret %2
}
fn @__pkru_gate_u::invoke(2) {
bb0:
  gate.enter.untrusted
  %2 = call @u::invoke(%0, %1)
  gate.exit.untrusted
  ret %2
}
fn @main(0) {
bb0:
  %0 = addr @cb
  %1 = alloc 8
  %2 = call @__pkru_gate_u::invoke(%0, %1)
  ret %2
}
";
        let (m, a) = analyzed(text);
        assert!(a.may_escape.is_empty(), "{:?}", a.may_escape);
        assert!(!a.may_run_untrusted.contains(&m.find("__pkru_impl_cb").unwrap()));
    }

    #[test]
    fn static_profile_schema_roundtrips() {
        let (_, a) = analyzed(GATED_E1);
        let sp = a.static_profile();
        assert_eq!(sp.len(), 1);
        assert!(!sp.is_empty());
        let reparsed = Profile::from_json(&sp.to_json()).unwrap();
        assert_eq!(reparsed, sp.profile);
    }

    #[test]
    fn soundness_comparator_reports_missing_sites() {
        let (_, a) = analyzed(GATED_E1);
        let sp = a.static_profile();
        let mut dynamic = Profile::new();
        // A dynamic subset passes.
        assert!(check_profile_soundness(&sp, &dynamic).is_ok());
        for s in sp.profile.sites() {
            dynamic.record(s);
        }
        assert!(check_profile_soundness(&sp, &dynamic).is_ok());
        // A site the static analysis never predicted fails.
        dynamic.record(AllocId::new(99, 0, 0));
        let missing = check_profile_soundness(&sp, &dynamic).unwrap_err();
        assert_eq!(missing, vec![AllocId::new(99, 0, 0)]);
    }

    #[test]
    fn returned_pointer_dereferenced_by_u_escapes() {
        // A trusted helper returns a fresh object; main hands it to U.
        let text = "
fn @make(0) {
bb0:
  %0 = alloc 32
  ret %0
}
untrusted fn @u::read(1) {
bb0:
  %1 = load %0, 0
  ret %1
}
fn @__pkru_gate_u::read(1) {
bb0:
  gate.enter.untrusted
  %1 = call @u::read(%0)
  gate.exit.untrusted
  ret %1
}
fn @main(0) {
bb0:
  %0 = call @make()
  %1 = call @__pkru_gate_u::read(%0)
  ret %1
}
";
        let (m, a) = analyzed(text);
        assert!(a.may_escape.contains(&AllocId::new(m.find("make").unwrap(), 0, 0)));
    }
}
