//! Red-team attack corpus: a seeded generator of Garmr-shaped attacker
//! modules, plus the harness that vets each one against the defense in
//! depth — [`crate::scan_module`] first, then the runtime (MPK faults,
//! gate integrity, the syscall filter, and the quarantine circuit breaker).
//!
//! Every generated module is a *complete* program: `@main` plays the
//! trusted application and routes into the attacker-controlled untrusted
//! code through the exact sanctioned wrapper shapes the compiler passes
//! emit, so a module that survives the static scan genuinely executes its
//! attack under untrusted rights. The contract, asserted by the corpus
//! tests and the CI chaos job, is that [`vet`] never returns
//! [`Catch::Uncaught`] for a generated attack.
//!
//! Generation is deterministic per seed (SplitMix64, as in
//! `server::fault`): a failing sample reproduces exactly from its seed.

use std::sync::Arc;

use lir::{parse_module, FaultPolicy, Interp, Machine, Module, SyscallFilter};
use pkru_handler::{MpkPolicy, ViolationHandler};

use crate::scan::{scan_module, ScanFinding};

/// Quarantine threshold the vetting machine runs with. Generated
/// fault-storm attacks always exceed it, so the breaker trips before the
/// run completes.
pub const VET_QUARANTINE_THRESHOLD: u32 = 4;

/// The attack families, one per Garmr technique the scanner (or the
/// runtime behind it) must stop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttackKind {
    /// The sandbox carries its own rights-restoring gate instruction — the
    /// classic reusable WRPKRU gadget.
    GadgetReuse,
    /// The gadget hides in a trusted helper reachable only through an
    /// indirect call from untrusted code (the path `gatelint` historically
    /// skipped).
    IndirectGadget,
    /// Trusted code opens a raw gate region and publishes an `M_T` pointer
    /// through memory while it is open — the cross-thread re-entry race,
    /// collapsed to its single-thread observable.
    GateReentry,
    /// Untrusted code issues an undeclared `sys.pkey_mprotect`, rewriting
    /// page protections from below the MPK story.
    SyscallAbuse,
    /// The module declares a broad `allow sys.*` list and the sandbox uses
    /// it: the allow-list must not sanction untrusted-rights syscalls.
    AllowlistWiden,
    /// A fault storm that is invisible statically (dereferencing a trusted
    /// pointer handed across the FFI boundary is exactly what profiling
    /// runs do): only the quarantine circuit breaker stops it.
    AuditAbuse,
}

impl AttackKind {
    /// Every attack family, in a stable order.
    pub const ALL: [AttackKind; 6] = [
        AttackKind::GadgetReuse,
        AttackKind::IndirectGadget,
        AttackKind::GateReentry,
        AttackKind::SyscallAbuse,
        AttackKind::AllowlistWiden,
        AttackKind::AuditAbuse,
    ];

    /// A short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            AttackKind::GadgetReuse => "gadget-reuse",
            AttackKind::IndirectGadget => "indirect-gadget",
            AttackKind::GateReentry => "gate-reentry",
            AttackKind::SyscallAbuse => "syscall-abuse",
            AttackKind::AllowlistWiden => "allowlist-widen",
            AttackKind::AuditAbuse => "audit-abuse",
        }
    }
}

/// One generated attack: the family, the seed that reproduces it, and the
/// module source text.
#[derive(Clone, Debug)]
pub struct Attack {
    /// Which family the module exercises.
    pub kind: AttackKind,
    /// The seed it was generated from.
    pub seed: u64,
    /// LIR source text of the complete attack program.
    pub text: String,
}

impl Attack {
    /// Parses the attack source. Generated text always parses; the panic
    /// message carries the seed for reproduction.
    pub fn module(&self) -> Module {
        parse_module(&self.text).unwrap_or_else(|e| {
            panic!(
                "generated attack (kind {}, seed {}) failed to parse: {e}",
                self.kind.label(),
                self.seed
            )
        })
    }
}

/// How (or whether) an attack was stopped.
#[derive(Clone, Debug)]
pub enum Catch {
    /// The adversarial scan rejected the module before it ran.
    Static(Vec<ScanFinding>),
    /// The scan passed it, but the runtime stopped it: a trap, or the
    /// quarantine breaker tripping. Carries a human-readable cause.
    Dynamic(String),
    /// Nothing stopped it — a defense gap. Never acceptable for a
    /// generated attack.
    Uncaught,
}

impl Catch {
    /// Whether the attack was stopped at either layer.
    pub fn caught(&self) -> bool {
        !matches!(self, Catch::Uncaught)
    }
}

/// Vets `module` the way the CI chaos job does: run the adversarial scan;
/// if it finds nothing, execute `@main` on a split machine with the
/// module's own syscall allow-list installed and the quarantine policy
/// active, and report whatever stops it.
pub fn vet(module: &Module) -> Catch {
    let findings = scan_module(module);
    if !findings.is_empty() {
        return Catch::Static(findings);
    }
    let mut machine = match Machine::split(FaultPolicy::Crash) {
        Ok(m) => m,
        Err(t) => return Catch::Dynamic(format!("machine setup failed: {t}")),
    };
    let handler = Arc::new(ViolationHandler::new(
        MpkPolicy::Quarantine { threshold: VET_QUARANTINE_THRESHOLD },
        0,
    ));
    machine.set_violation_handler(Arc::clone(&handler));
    machine.install_syscall_filter(SyscallFilter::from_module(module));
    let outcome = Interp::new(module, &mut machine).run("main", &[]);
    match outcome {
        Err(trap) => Catch::Dynamic(trap.to_string()),
        Ok(_) if handler.tripped() => Catch::Dynamic("quarantine breaker tripped".into()),
        Ok(_) => Catch::Uncaught,
    }
}

/// Generates the attack family selected by `seed`, varying names, sizes,
/// and instruction counts deterministically.
pub fn generate_any(seed: u64) -> Attack {
    let kind = AttackKind::ALL[(seed % AttackKind::ALL.len() as u64) as usize];
    generate(kind, seed)
}

/// Generates one attack of `kind` from `seed`.
pub fn generate(kind: AttackKind, seed: u64) -> Attack {
    // SplitMix64: quality is irrelevant, determinism is not.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let tag = next() % 1000;
    let size = 8 * (1 + next() % 8);
    let secret = 1 + next() % 9000;
    let text = match kind {
        AttackKind::GadgetReuse => gadget_reuse(tag, size, secret),
        AttackKind::IndirectGadget => indirect_gadget(tag, size, secret),
        AttackKind::GateReentry => gate_reentry(tag, size, secret),
        AttackKind::SyscallAbuse => syscall_abuse(tag, size, next() % 2 == 0),
        AttackKind::AllowlistWiden => allowlist_widen(tag, size),
        AttackKind::AuditAbuse => {
            audit_abuse(tag, size, secret, VET_QUARANTINE_THRESHOLD as u64 + 1 + next() % 3)
        }
    };
    Attack { kind, seed, text }
}

/// The sanctioned T→U wrapper shape for `callee` (arity 1), exactly as
/// `expand_annotations` emits it.
fn gate_wrapper(callee: &str) -> String {
    format!(
        "fn @__pkru_gate_{callee}(1) {{\nbb0:\n  gate.enter.untrusted\n  \
         %1 = call @{callee}(%0)\n  gate.exit.untrusted\n  ret %1\n}}\n"
    )
}

fn gadget_reuse(tag: u64, size: u64, secret: u64) -> String {
    // The untrusted function restores trusted rights with a raw gate exit,
    // then helps itself to memory. Statically: SCAN001. Dynamically the
    // stray exit corrupts the gate stack.
    format!(
        "untrusted fn @evil::f{tag}(1) {{\nbb0:\n  gate.exit.untrusted\n  \
         %1 = load %0, 0\n  ret %1\n}}\n{wrapper}\
         fn @main(0) {{\nbb0:\n  %0 = ualloc {size}\n  store %0, 0, {secret}\n  \
         %1 = call @__pkru_gate_evil::f{tag}(%0)\n  ret %1\n}}\n",
        wrapper = gate_wrapper(&format!("evil::f{tag}"))
    )
}

fn indirect_gadget(tag: u64, size: u64, secret: u64) -> String {
    // The gadget sits in a *trusted* helper whose address the application
    // takes; the sandbox reaches it through an icall. Statically: SCAN001
    // with a witness through @evil::entry.
    format!(
        "fn @gadget{tag}(1) {{\nbb0:\n  gate.exit.untrusted\n  %1 = load %0, 0\n  \
         ret %1\n}}\n\
         untrusted fn @evil::entry{tag}(1) {{\nbb0:\n  %1 = icall %0({secret})\n  ret %1\n}}\n{wrapper}\
         fn @main(0) {{\nbb0:\n  %0 = addr @gadget{tag}\n  %1 = ualloc {size}\n  \
         %2 = call @__pkru_gate_evil::entry{tag}(%0)\n  ret %2\n}}\n",
        wrapper = gate_wrapper(&format!("evil::entry{tag}"))
    )
}

fn gate_reentry(tag: u64, size: u64, secret: u64) -> String {
    // Trusted code opens a raw gate region and publishes an M_T pointer
    // into untrusted-readable memory while it is open. Statically: SCAN001
    // (raw gates in @main) and SCAN003 (the publication).
    format!(
        "untrusted fn @evil::peek{tag}(1) {{\nbb0:\n  %1 = load %0, 0\n  ret %1\n}}\n\
         fn @main(0) {{\nbb0:\n  %0 = alloc {size}\n  store %0, 0, {secret}\n  \
         %1 = ualloc {size}\n  gate.enter.untrusted\n  store %1, 0, %0\n  \
         %2 = call @evil::peek{tag}(%1)\n  gate.exit.untrusted\n  ret %2\n}}\n"
    )
}

fn syscall_abuse(tag: u64, size: u64, remap: bool) -> String {
    // The sandbox rewrites page protections from below with an undeclared
    // syscall. Statically: SCAN002 (untrusted rights). Dynamically the
    // machine's syscall filter refuses it.
    let sys = if remap { "sys.pkey_mprotect %0, 4096, 3, 0" } else { "sys.mprotect %0, 4096, 7" };
    format!(
        "untrusted fn @evil::remap{tag}(1) {{\nbb0:\n  {sys}\n  %1 = load %0, 0\n  \
         ret %1\n}}\n{wrapper}\
         fn @main(0) {{\nbb0:\n  %0 = ualloc {size}\n  store %0, 0, 7\n  \
         %1 = call @__pkru_gate_evil::remap{tag}(%0)\n  ret %1\n}}\n",
        wrapper = gate_wrapper(&format!("evil::remap{tag}"))
    )
}

fn allowlist_widen(tag: u64, size: u64) -> String {
    // The module legitimately allow-lists sys.mprotect for its trusted
    // code, and the sandbox tries to ride the entry. Statically: SCAN002
    // (allow-listed or not, untrusted rights). Dynamically the filter
    // denies any syscall arriving with untrusted rights.
    format!(
        "allow sys.mprotect\n\
         untrusted fn @evil::ride{tag}(1) {{\nbb0:\n  sys.mprotect %0, 4096, 7\n  \
         %1 = load %0, 0\n  ret %1\n}}\n{wrapper}\
         fn @main(0) {{\nbb0:\n  %0 = ualloc {size}\n  store %0, 0, 7\n  \
         %1 = call @__pkru_gate_evil::ride{tag}(%0)\n  ret %1\n}}\n",
        wrapper = gate_wrapper(&format!("evil::ride{tag}"))
    )
}

fn audit_abuse(tag: u64, size: u64, secret: u64, probes: u64) -> String {
    // Statically clean by design: @main hands a trusted pointer across the
    // sanctioned gate (exactly what a profiling run does) and the sandbox
    // hammers it. Each dereference faults; the quarantine breaker must
    // trip before the storm completes.
    let mut body = String::new();
    for i in 0..probes {
        body.push_str(&format!("  %{} = load %0, 0\n", i + 1));
    }
    format!(
        "untrusted fn @evil::probe{tag}(1) {{\nbb0:\n{body}  ret %{probes}\n}}\n{wrapper}\
         fn @main(0) {{\nbb0:\n  %0 = alloc {size}\n  store %0, 0, {secret}\n  \
         %1 = call @__pkru_gate_evil::probe{tag}(%0)\n  ret %1\n}}\n",
        wrapper = gate_wrapper(&format!("evil::probe{tag}"))
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lir::verify_module;

    #[test]
    fn every_kind_generates_a_well_formed_module() {
        for (i, kind) in AttackKind::ALL.into_iter().enumerate() {
            let attack = generate(kind, 1000 + i as u64);
            let module = attack.module();
            verify_module(&module).unwrap_or_else(|e| {
                panic!("attack {} (seed {}) does not verify: {e:?}", kind.label(), attack.seed)
            });
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(generate_any(42).text, generate_any(42).text);
        assert_ne!(generate_any(42).text, generate_any(43).text);
    }

    #[test]
    fn every_kind_is_caught() {
        for (i, kind) in AttackKind::ALL.into_iter().enumerate() {
            let attack = generate(kind, 7 * i as u64 + 1);
            let catch = vet(&attack.module());
            assert!(
                catch.caught(),
                "attack {} (seed {}) escaped both layers:\n{}",
                kind.label(),
                attack.seed,
                attack.text
            );
        }
    }

    #[test]
    fn audit_abuse_is_static_clean_but_dynamically_quarantined() {
        // The one family the scanner must NOT flag — dereferencing a
        // trusted pointer handed across the FFI boundary is what every
        // profiling run looks like. The breaker is the backstop.
        let attack = generate(AttackKind::AuditAbuse, 5);
        let module = attack.module();
        assert!(scan_module(&module).is_empty(), "audit-abuse must pass the static scan");
        match vet(&module) {
            Catch::Dynamic(cause) => {
                assert!(
                    cause.contains("quarantine") || cause.contains("pkey violation"),
                    "unexpected dynamic cause: {cause}"
                );
            }
            other => panic!("expected a dynamic catch, got {other:?}"),
        }
    }

    #[test]
    fn syscall_abuse_without_static_scan_is_denied_at_runtime() {
        // Defense in depth: skip the scanner entirely and the machine's
        // syscall filter still refuses the remap.
        let attack = generate(AttackKind::SyscallAbuse, 11);
        let module = attack.module();
        let mut machine = Machine::split(FaultPolicy::Crash).unwrap();
        machine.install_syscall_filter(SyscallFilter::from_module(&module));
        let trap = Interp::new(&module, &mut machine).run("main", &[]).unwrap_err();
        assert!(trap.to_string().contains("denied"), "unexpected trap: {trap}");
    }
}
