//! The module call graph, with indirect calls resolved conservatively.

use std::collections::BTreeSet;

use lir::{address_taken, FuncId, Instr, Module};

/// A call graph over a [`Module`].
///
/// Direct edges come from `call @f` instructions. Indirect calls cannot be
/// resolved exactly, so each `icall` is given an edge to *every*
/// address-taken function whose parameter count matches the call — the
/// same conservative assumption PKRU-Safe's trusted-entry pass makes when
/// it gates all exported and address-taken functions (§3.3).
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// `callees[f]` = everything `f` may call (direct ∪ resolved indirect).
    callees: Vec<BTreeSet<FuncId>>,
    /// Functions whose address is taken anywhere in the module.
    address_taken: BTreeSet<FuncId>,
}

impl CallGraph {
    /// Builds the call graph for `module`.
    ///
    /// Calls to names not present in the module (a verifier error) are
    /// ignored rather than panicking.
    pub fn build(module: &Module) -> CallGraph {
        let taken = address_taken(module);
        let mut callees = vec![BTreeSet::new(); module.functions.len()];
        for (fi, func) in module.functions.iter().enumerate() {
            for block in &func.blocks {
                for instr in &block.instrs {
                    match instr {
                        Instr::Call { callee, .. } => {
                            if let Some(id) = module.find(callee) {
                                callees[fi].insert(id);
                            }
                        }
                        Instr::CallIndirect { args, .. } => {
                            let arity = args.len() as u32;
                            callees[fi].extend(
                                taken
                                    .iter()
                                    .copied()
                                    .filter(|t| module.function(*t).params == arity),
                            );
                        }
                        _ => {}
                    }
                }
            }
        }
        CallGraph { callees, address_taken: taken }
    }

    /// Everything `func` may call.
    pub fn callees(&self, func: FuncId) -> impl Iterator<Item = FuncId> + '_ {
        self.callees.get(func as usize).into_iter().flatten().copied()
    }

    /// Functions whose address is taken anywhere in the module.
    pub fn address_taken(&self) -> &BTreeSet<FuncId> {
        &self.address_taken
    }

    /// The set of possible targets of an indirect call with `arity`
    /// arguments: arity-matched address-taken functions.
    pub fn indirect_targets<'a>(
        &'a self,
        module: &'a Module,
        arity: u32,
    ) -> impl Iterator<Item = FuncId> + 'a {
        self.address_taken.iter().copied().filter(move |t| module.function(*t).params == arity)
    }

    /// Transitive closure of `callees` starting from `roots`.
    pub fn reachable_from(&self, roots: impl IntoIterator<Item = FuncId>) -> BTreeSet<FuncId> {
        let mut seen: BTreeSet<FuncId> = BTreeSet::new();
        let mut stack: Vec<FuncId> = roots.into_iter().collect();
        while let Some(f) = stack.pop() {
            if !seen.insert(f) {
                continue;
            }
            stack.extend(self.callees(f).filter(|c| !seen.contains(c)));
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lir::parse_module;

    #[test]
    fn direct_and_indirect_edges() {
        let m = parse_module(
            "
fn @leaf(1) {
bb0:
  ret %0
}
fn @other(2) {
bb0:
  ret
}
fn @mid(1) {
bb0:
  %1 = icall %0(5)
  ret %1
}
fn @main(0) {
bb0:
  %0 = addr @leaf
  %1 = call @mid(%0)
  ret %1
}
",
        )
        .unwrap();
        let cg = CallGraph::build(&m);
        let (leaf, mid, main) =
            (m.find("leaf").unwrap(), m.find("mid").unwrap(), m.find("main").unwrap());
        // main calls mid directly; mid's icall resolves to the arity-1
        // address-taken function only (not @other, arity 2, never taken).
        assert_eq!(cg.callees(main).collect::<Vec<_>>(), vec![mid]);
        assert_eq!(cg.callees(mid).collect::<Vec<_>>(), vec![leaf]);
        assert_eq!(cg.address_taken(), &BTreeSet::from([leaf]));
        assert_eq!(cg.reachable_from([main]), BTreeSet::from([main, mid, leaf]));
    }
}
