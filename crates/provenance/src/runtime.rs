//! The profiling fault handler and single-step resume (paper §4.3.2).

use pkru_mpk::{Cpu, Pkru};
use pkru_vmem::Fault;

use crate::metadata::MetadataTable;
use crate::profile::Profile;

/// What the fault handler decided about a fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultResolution {
    /// An MPK violation serviced by the profiler: the faulting access must
    /// be re-executed once under `grant` rights (single-stepped), after
    /// which the interrupted PKRU value is restored.
    SingleStep {
        /// The rights to install for exactly one instruction.
        grant: Pkru,
    },
    /// Not an MPK violation: fall through to the previously registered
    /// handler (or crash, if none handles it).
    Chain,
}

/// A chained pre-existing fault handler; returns `true` if it handled the
/// fault.
pub type FaultFallback = Box<dyn FnMut(&Fault) -> bool>;

/// The profiling runtime: metadata table, profile, and fault handling.
///
/// Registered "as late as possible" in the paper so that application
/// handlers installed earlier keep working; the [`ProfilingRuntime::fallback`]
/// hook models that chaining — non-MPK faults are forwarded to it.
pub struct ProfilingRuntime {
    /// Live-object metadata fed by the instrumentation callbacks.
    pub metadata: MetadataTable,
    /// The profile being recorded.
    pub profile: Profile,
    /// The previously registered SIGSEGV handler, if any. Returns `true`
    /// if it handled the fault.
    pub fallback: Option<FaultFallback>,
    /// Pkey faults whose address matched no tracked object (non-heap
    /// trusted data, e.g. globals); resumed but not recorded.
    pub unknown_faults: u64,
}

impl Default for ProfilingRuntime {
    fn default() -> ProfilingRuntime {
        ProfilingRuntime::new()
    }
}

impl ProfilingRuntime {
    /// Creates a runtime with no prior handler chained.
    pub fn new() -> ProfilingRuntime {
        ProfilingRuntime {
            metadata: MetadataTable::new(),
            profile: Profile::new(),
            fallback: None,
            unknown_faults: 0,
        }
    }

    /// Services a fault.
    ///
    /// MPK violations are looked up in the metadata table; if the faulting
    /// address belongs to a tracked object, its site is recorded in the
    /// profile (once). Either way the program is resumed by single-stepping
    /// under full rights. Other faults chain to the prior handler.
    pub fn handle_fault(&mut self, fault: &Fault) -> FaultResolution {
        if !fault.is_pkey_violation() {
            return FaultResolution::Chain;
        }
        self.profile.faults_observed += 1;
        match self.metadata.lookup(fault.addr) {
            Some(record) => {
                self.profile.record(record.id);
            }
            None => {
                self.unknown_faults += 1;
            }
        }
        FaultResolution::SingleStep { grant: Pkru::ALL_ACCESS }
    }

    /// Chains a fault to the previously registered handler, returning
    /// whether it was handled.
    pub fn chain(&mut self, fault: &Fault) -> bool {
        match &mut self.fallback {
            Some(handler) => handler(fault),
            None => false,
        }
    }
}

/// Re-executes one faulting access under temporarily raised rights.
///
/// Models the paper's trap-flag dance exactly: set `EFLAGS.TF`, install the
/// granted PKRU, retry the instruction; the subsequent single-step trap
/// (SIGTRAP) restores the interrupted PKRU and clears the flag. The net
/// effect is that exactly one access succeeds and the compartment's rights
/// are unchanged afterward — without decoding or emulating the instruction.
pub fn single_step_access<R>(cpu: &mut Cpu, grant: Pkru, access: impl FnOnce(&mut Cpu) -> R) -> R {
    let interrupted = cpu.pkru();
    cpu.set_trap_flag(true);
    cpu.set_pkru(grant);
    let result = access(cpu);
    // SIGTRAP handler: restore the compartment's rights.
    cpu.set_pkru(interrupted);
    cpu.set_trap_flag(false);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocid::AllocId;
    use pkru_mpk::{AccessKind, Pkey};
    use pkru_vmem::FaultKind;

    fn pkey_fault(addr: u64) -> Fault {
        let key = Pkey::new(1).unwrap();
        Fault {
            addr,
            access: AccessKind::Read,
            kind: FaultKind::PkeyViolation { pkey: key, pkru: Pkru::deny_only(key) },
        }
    }

    #[test]
    fn tracked_fault_records_site_once() {
        let mut rt = ProfilingRuntime::new();
        rt.metadata.log_alloc(0x1000, 64, AllocId::new(7, 0, 0));
        for _ in 0..3 {
            let r = rt.handle_fault(&pkey_fault(0x1010));
            assert_eq!(r, FaultResolution::SingleStep { grant: Pkru::ALL_ACCESS });
        }
        assert_eq!(rt.profile.len(), 1);
        assert!(rt.profile.contains(AllocId::new(7, 0, 0)));
        assert_eq!(rt.profile.faults_observed, 3);
    }

    #[test]
    fn untracked_pkey_fault_resumes_without_recording() {
        let mut rt = ProfilingRuntime::new();
        let r = rt.handle_fault(&pkey_fault(0x9999));
        assert!(matches!(r, FaultResolution::SingleStep { .. }));
        assert!(rt.profile.is_empty());
        assert_eq!(rt.unknown_faults, 1);
    }

    #[test]
    fn non_pkey_faults_chain_to_prior_handler() {
        let mut rt = ProfilingRuntime::new();
        let handled = std::rc::Rc::new(std::cell::Cell::new(false));
        let flag = std::rc::Rc::clone(&handled);
        rt.fallback = Some(Box::new(move |_| {
            flag.set(true);
            true
        }));
        let fault = Fault { addr: 0x10, access: AccessKind::Write, kind: FaultKind::Unmapped };
        assert_eq!(rt.handle_fault(&fault), FaultResolution::Chain);
        assert!(rt.chain(&fault));
        assert!(handled.get());
        assert!(rt.profile.is_empty());
    }

    #[test]
    fn single_step_restores_rights_and_flag() {
        let mut cpu = Cpu::new();
        let untrusted = Pkru::deny_only(Pkey::new(1).unwrap());
        cpu.set_pkru(untrusted);
        let seen = single_step_access(&mut cpu, Pkru::ALL_ACCESS, |cpu| {
            assert!(cpu.trap_flag());
            cpu.pkru()
        });
        assert_eq!(seen, Pkru::ALL_ACCESS);
        assert_eq!(cpu.pkru(), untrusted);
        assert!(!cpu.trap_flag());
    }
}
