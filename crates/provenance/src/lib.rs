//! Runtime provenance tracking and dynamic profiling (paper §4.3).
//!
//! PKRU-Safe decides which allocation *sites* must serve their objects from
//! untrusted memory by observing the program: during a profiling run, all
//! heap data still lives in `M_T`, so the first time untrusted code touches
//! an object the hardware raises an MPK violation. The profiling runtime
//! interposes on these faults, maps the faulting address back to the
//! allocation site that produced the object, records that site's
//! [`AllocId`] in the [`Profile`], and resumes the program by
//! single-stepping the faulting instruction with temporarily raised rights.
//!
//! The pieces:
//!
//! - [`AllocId`] — the (function, basic block, call-site) triple assigned
//!   by the compiler pass to every allocator call;
//! - [`MetadataTable`] — the live-object map fed by the `log_alloc` /
//!   `log_realloc` / `log_dealloc` callbacks the instrumentation inserts;
//! - [`ProfilingRuntime`] — the chained fault handler plus single-step
//!   resume logic;
//! - [`Profile`] — the set of shared sites, serializable to JSON for the
//!   hand-off between the profiling and enforcement builds.

mod allocid;
pub mod json;
mod metadata;
mod profile;
mod runtime;

pub use allocid::AllocId;
pub use metadata::{AllocRecord, MetadataTable};
pub use profile::{Profile, ProfileError};
pub use runtime::{single_step_access, FaultResolution, ProfilingRuntime};
