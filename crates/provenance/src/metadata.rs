//! The live-object metadata table fed by the instrumentation callbacks.

use std::collections::BTreeMap;

use pkru_vmem::VirtAddr;

use crate::allocid::AllocId;

/// Metadata recorded for one live heap object.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AllocRecord {
    /// Base address of the object.
    pub addr: VirtAddr,
    /// Size of the object in bytes.
    pub size: u64,
    /// The allocation site that produced the object. Reallocation keeps
    /// the *original* site's ID (§4.3.1), so provenance survives resizing.
    pub id: AllocId,
}

impl AllocRecord {
    /// Whether `addr` falls inside this object.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr >= self.addr && addr < self.addr + self.size
    }
}

/// Tracks every live heap object and answers "which object contains this
/// faulting address?" — the lookup at the heart of the fault handler.
#[derive(Clone, Debug, Default)]
pub struct MetadataTable {
    by_addr: BTreeMap<VirtAddr, AllocRecord>,
    /// Total `log_alloc` callbacks observed (profiling statistics).
    allocs_logged: u64,
}

impl MetadataTable {
    /// Creates an empty table.
    pub fn new() -> MetadataTable {
        MetadataTable::default()
    }

    /// Records a fresh allocation (the `log_alloc` callback).
    pub fn log_alloc(&mut self, addr: VirtAddr, size: u64, id: AllocId) {
        self.allocs_logged += 1;
        self.by_addr.insert(addr, AllocRecord { addr, size, id });
    }

    /// Records a reallocation (the `log_realloc` callback): the new object
    /// inherits the original object's [`AllocId`].
    ///
    /// Returns the inherited ID, or `None` if `old` was not tracked (in
    /// which case nothing is recorded — untracked objects stay untracked).
    pub fn log_realloc(&mut self, old: VirtAddr, new: VirtAddr, new_size: u64) -> Option<AllocId> {
        let record = self.by_addr.remove(&old)?;
        self.by_addr.insert(new, AllocRecord { addr: new, size: new_size, id: record.id });
        Some(record.id)
    }

    /// Stops tracking an object (the `log_dealloc` callback).
    pub fn log_dealloc(&mut self, addr: VirtAddr) -> Option<AllocRecord> {
        self.by_addr.remove(&addr)
    }

    /// The live object containing `addr`, if any.
    pub fn lookup(&self, addr: VirtAddr) -> Option<&AllocRecord> {
        let (_, record) = self.by_addr.range(..=addr).next_back()?;
        record.contains(addr).then_some(record)
    }

    /// Number of objects currently tracked.
    pub fn live_count(&self) -> usize {
        self.by_addr.len()
    }

    /// Total allocations ever logged.
    pub fn allocs_logged(&self) -> u64 {
        self.allocs_logged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ID_A: AllocId = AllocId::new(1, 0, 0);
    const ID_B: AllocId = AllocId::new(2, 3, 1);

    #[test]
    fn lookup_finds_interior_addresses() {
        let mut t = MetadataTable::new();
        t.log_alloc(0x1000, 64, ID_A);
        t.log_alloc(0x2000, 16, ID_B);
        assert_eq!(t.lookup(0x1000).unwrap().id, ID_A);
        assert_eq!(t.lookup(0x103f).unwrap().id, ID_A);
        assert!(t.lookup(0x1040).is_none());
        assert!(t.lookup(0xfff).is_none());
        assert_eq!(t.lookup(0x200f).unwrap().id, ID_B);
    }

    #[test]
    fn realloc_inherits_original_site() {
        let mut t = MetadataTable::new();
        t.log_alloc(0x1000, 64, ID_A);
        let inherited = t.log_realloc(0x1000, 0x5000, 256).unwrap();
        assert_eq!(inherited, ID_A);
        assert!(t.lookup(0x1000).is_none());
        let r = t.lookup(0x50ff).unwrap();
        assert_eq!(r.id, ID_A);
        assert_eq!(r.size, 256);
    }

    #[test]
    fn realloc_of_untracked_object_is_ignored() {
        let mut t = MetadataTable::new();
        assert!(t.log_realloc(0x1000, 0x2000, 64).is_none());
        assert_eq!(t.live_count(), 0);
    }

    #[test]
    fn dealloc_stops_tracking() {
        let mut t = MetadataTable::new();
        t.log_alloc(0x1000, 64, ID_A);
        assert!(t.log_dealloc(0x1000).is_some());
        assert!(t.lookup(0x1000).is_none());
        assert!(t.log_dealloc(0x1000).is_none());
        assert_eq!(t.allocs_logged(), 1);
    }

    #[test]
    fn reuse_of_address_updates_record() {
        let mut t = MetadataTable::new();
        t.log_alloc(0x1000, 64, ID_A);
        t.log_dealloc(0x1000);
        t.log_alloc(0x1000, 32, ID_B);
        let r = t.lookup(0x1010).unwrap();
        assert_eq!(r.id, ID_B);
        assert_eq!(r.size, 32);
        assert!(t.lookup(0x1020).is_none());
    }
}
