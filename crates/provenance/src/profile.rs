//! Profiles: the artifact handed from the profiling build to the final one.

use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

use crate::allocid::AllocId;
use crate::json::{self, JsonValue};

/// Errors from profile (de)serialization.
#[derive(Debug)]
pub enum ProfileError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed profile contents.
    Parse(String),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Io(e) => write!(f, "profile I/O error: {e}"),
            ProfileError::Parse(e) => write!(f, "profile parse error: {e}"),
        }
    }
}

impl std::error::Error for ProfileError {}

/// A recorded profile: the set of trusted allocation sites whose objects
/// were observed crossing into the untrusted compartment.
///
/// Sites in the profile are rewritten by the enforcement build to allocate
/// from `M_U`; everything else stays in `M_T`. The set is deduplicated —
/// the fault handler records each site at most once (§4.3.2) — and profiles
/// from separate runs merge with plain set union, which is how a profiling
/// *corpus* accumulates.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    shared_sites: BTreeSet<AllocId>,
    /// Total pkey faults serviced while profiling (including repeats on
    /// already-recorded sites); a coverage diagnostic, not policy input.
    pub faults_observed: u64,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    /// Records a site; returns `true` if it was not already present.
    pub fn record(&mut self, id: AllocId) -> bool {
        self.shared_sites.insert(id)
    }

    /// Whether `id` was observed crossing the boundary.
    pub fn contains(&self, id: AllocId) -> bool {
        self.shared_sites.contains(&id)
    }

    /// Number of distinct shared sites.
    pub fn len(&self) -> usize {
        self.shared_sites.len()
    }

    /// Whether no site was recorded.
    pub fn is_empty(&self) -> bool {
        self.shared_sites.is_empty()
    }

    /// Iterates the recorded sites in sorted order.
    pub fn sites(&self) -> impl Iterator<Item = AllocId> + '_ {
        self.shared_sites.iter().copied()
    }

    /// Absorbs the sites resolved from a serve-time audit log: every site
    /// that violated the boundary under `audit` policy joins the shared
    /// set, so an identical re-run allocates it from `M_U` and runs
    /// violation-free. Returns how many sites were newly added.
    ///
    /// This closes the compile–profile–recompile loop at runtime — the
    /// audit log is a profiling run that happened in production.
    pub fn absorb_audit(&mut self, sites: impl IntoIterator<Item = AllocId>) -> usize {
        let mut added = 0;
        for id in sites {
            self.faults_observed += 1;
            if self.record(id) {
                added += 1;
            }
        }
        added
    }

    /// Unions `other` into `self` (merging a profiling corpus).
    pub fn merge(&mut self, other: &Profile) {
        self.shared_sites.extend(other.shared_sites.iter().copied());
        self.faults_observed += other.faults_observed;
    }

    /// Serializes to pretty JSON.
    ///
    /// The schema is shared by dynamic and static profiles:
    /// `{"shared_sites": [{"func": F, "block": B, "site": S}, ...],
    /// "faults_observed": N}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"shared_sites\": [");
        for (i, id) in self.shared_sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{ \"func\": {}, \"block\": {}, \"site\": {} }}",
                id.func, id.block, id.site
            ));
        }
        if !self.shared_sites.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!("],\n  \"faults_observed\": {}\n}}", self.faults_observed));
        out
    }

    /// Parses a profile from JSON.
    pub fn from_json(text: &str) -> Result<Profile, ProfileError> {
        let parse_error = |m: &str| ProfileError::Parse(m.to_string());
        let doc = json::parse(text).map_err(|e| ProfileError::Parse(e.to_string()))?;
        let sites = doc
            .get("shared_sites")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| parse_error("missing \"shared_sites\" array"))?;
        let mut profile = Profile::new();
        for site in sites {
            let field = |key: &str| {
                site.get(key)
                    .and_then(JsonValue::as_u64)
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| ProfileError::Parse(format!("bad site field {key:?}")))
            };
            profile.record(AllocId::new(field("func")?, field("block")?, field("site")?));
        }
        profile.faults_observed = doc
            .get("faults_observed")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| parse_error("missing \"faults_observed\""))?;
        Ok(profile)
    }

    /// Writes the profile to `path` as JSON.
    pub fn save(&self, path: &Path) -> Result<(), ProfileError> {
        std::fs::write(path, self.to_json()).map_err(ProfileError::Io)
    }

    /// Loads a profile from `path`.
    pub fn load(path: &Path) -> Result<Profile, ProfileError> {
        let text = std::fs::read_to_string(path).map_err(ProfileError::Io)?;
        Profile::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_deduplicates() {
        let mut p = Profile::new();
        assert!(p.record(AllocId::new(1, 0, 0)));
        assert!(!p.record(AllocId::new(1, 0, 0)));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn json_roundtrip() {
        let mut p = Profile::new();
        p.record(AllocId::new(1, 2, 3));
        p.record(AllocId::new(4, 5, 6));
        p.faults_observed = 42;
        let q = Profile::from_json(&p.to_json()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn absorb_audit_records_and_counts_new_sites() {
        let mut p = Profile::new();
        p.record(AllocId::new(1, 0, 0));
        let audited = [AllocId::new(1, 0, 0), AllocId::new(2, 0, 0), AllocId::new(2, 0, 0)];
        assert_eq!(p.absorb_audit(audited), 1, "only the unseen site is new");
        assert!(p.contains(AllocId::new(2, 0, 0)));
        assert_eq!(p.faults_observed, 3, "every audited violation counts as a fault");
    }

    #[test]
    fn merge_is_union() {
        let mut a = Profile::new();
        a.record(AllocId::new(1, 0, 0));
        let mut b = Profile::new();
        b.record(AllocId::new(1, 0, 0));
        b.record(AllocId::new(2, 0, 0));
        a.merge(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(Profile::from_json("not json").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pkru_safe_profile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.json");
        let mut p = Profile::new();
        p.record(AllocId::new(9, 9, 9));
        p.save(&path).unwrap();
        assert_eq!(Profile::load(&path).unwrap(), p);
        std::fs::remove_file(&path).ok();
    }
}
