//! Allocation-site identifiers.

use core::fmt;

/// A unique identifier for one allocator call site.
///
/// The paper's LLVM pass assigns each call to the global allocator a tuple
/// of function ID, basic-block ID, and call-site ID, which ties a recorded
/// fault back to an exact location in the IR (§4.3.1). The identifier is
/// stable across the profiling and enforcement builds — that stability is
/// what makes the profile → rewrite hand-off sound.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AllocId {
    /// The containing function's ID.
    pub func: u32,
    /// The containing basic block's ID within the function.
    pub block: u32,
    /// The call site's ID within the block.
    pub site: u32,
}

impl AllocId {
    /// Creates an identifier from its three components.
    pub const fn new(func: u32, block: u32, site: u32) -> AllocId {
        AllocId { func, block, site }
    }
}

impl fmt::Display for AllocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}.b{}.s{}", self.func, self.block, self.site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        let a = AllocId::new(1, 0, 0);
        let b = AllocId::new(1, 0, 1);
        let c = AllocId::new(2, 0, 0);
        assert!(a < b && b < c);
    }

    #[test]
    fn display_roundtrip_shape() {
        assert_eq!(AllocId::new(3, 1, 4).to_string(), "f3.b1.s4");
    }
}
