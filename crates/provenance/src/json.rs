//! Minimal JSON support for profile (de)serialization.
//!
//! The build container has no registry access, so profiles are serialized
//! without serde. This module implements just enough of JSON for the
//! profile schema — objects, arrays, unsigned integers, and strings — while
//! staying a strict subset of the grammar, so profiles written here parse
//! with any off-the-shelf JSON library and vice versa.

use core::fmt;

/// A parsed JSON value (the subset the profile schema uses).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonValue {
    /// An unsigned integer (the only number form profiles contain).
    Number(u64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object as (key, value) pairs in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A JSON syntax error with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (no trailing garbage).
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", byte as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(c) if c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected character {:?}", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let start = self.pos;
        loop {
            match self.peek() {
                Some(b'"') => {
                    // Profile keys never contain escapes; reject them
                    // rather than silently mis-reading.
                    let raw = &self.bytes[start..self.pos];
                    self.pos += 1;
                    return String::from_utf8(raw.to_vec())
                        .map_err(|_| self.error("invalid UTF-8 in string"));
                }
                Some(b'\\') => return Err(self.error("escapes are not supported")),
                Some(_) => self.pos += 1,
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        raw.parse().map(JsonValue::Number).map_err(|_| self.error("integer out of range"))
    }
}

/// Escapes nothing: profile strings are plain identifiers. Panics if a
/// string would need escaping, which would indicate a schema change this
/// writer has not been taught.
pub fn write_string(out: &mut String, s: &str) {
    assert!(
        !s.contains(['"', '\\']) && s.chars().all(|c| !c.is_control()),
        "profile strings must not need JSON escaping: {s:?}"
    );
    out.push('"');
    out.push_str(s);
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_profile_shaped_document() {
        let doc = r#"
        {
          "shared_sites": [ { "func": 1, "block": 2, "site": 3 } ],
          "faults_observed": 42
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("faults_observed").and_then(JsonValue::as_u64), Some(42));
        let sites = v.get("shared_sites").and_then(JsonValue::as_array).unwrap();
        assert_eq!(sites[0].get("func").and_then(JsonValue::as_u64), Some(1));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("not json").is_err());
    }

    #[test]
    fn empty_containers_parse() {
        assert_eq!(parse("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(vec![]));
    }
}
