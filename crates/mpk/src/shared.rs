//! Process-wide protection-key allocation shared between threads.
//!
//! Protection keys are a per-process resource: the kernel hands them out
//! with `pkey_alloc` regardless of which thread asks, while rights stay
//! per-thread in each CPU's PKRU register. [`PkeyPool`](crate::PkeyPool)
//! models the kernel bookkeeping for a single-threaded caller;
//! [`SharedPkeyPool`] is the multi-threaded variant a serving runtime
//! needs: a cloneable handle over one atomic allocation bitmap, so any
//! worker can allocate or free keys without a lock and without ever
//! handing the same live key to two callers.

use std::sync::atomic::{AtomicU16, Ordering};
use std::sync::Arc;

use crate::pkey::{Pkey, MAX_PKEYS};
use crate::pool::PkeyPoolError;

/// A thread-safe `pkey_alloc`/`pkey_free` interface.
///
/// Clones share the same underlying bitmap (the "kernel" state); the
/// allocation and free paths are lock-free compare-and-swap loops, so the
/// pool is safe to hammer from any number of worker threads. Key 0 is
/// permanently allocated and can never be freed, matching the Linux ABI.
#[derive(Clone, Debug, Default)]
pub struct SharedPkeyPool {
    allocated: Arc<AtomicU16>,
}

impl SharedPkeyPool {
    /// Creates a pool with only key 0 allocated.
    pub fn new() -> SharedPkeyPool {
        SharedPkeyPool { allocated: Arc::new(AtomicU16::new(1)) }
    }

    /// Allocates the lowest free key (`pkey_alloc`).
    ///
    /// Linearizable: concurrent callers each receive a distinct key, or
    /// [`PkeyPoolError::Exhausted`] once all 15 allocatable keys are live.
    pub fn alloc(&self) -> Result<Pkey, PkeyPoolError> {
        let mut current = self.allocated.load(Ordering::Acquire);
        loop {
            let free = (1..MAX_PKEYS).find(|i| current & (1 << i) == 0);
            let Some(index) = free else {
                return Err(PkeyPoolError::Exhausted);
            };
            match self.allocated.compare_exchange_weak(
                current,
                current | (1 << index),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                // Indices below `MAX_PKEYS` are always valid keys.
                Ok(_) => return Ok(Pkey::new(index).expect("key index in range")),
                Err(actual) => current = actual,
            }
        }
    }

    /// Releases a previously allocated key (`pkey_free`).
    ///
    /// Freeing key 0 or a key that is not currently allocated fails, as in
    /// the kernel; a double free from a racing thread is reported to
    /// exactly one of the callers.
    pub fn free(&self, key: Pkey) -> Result<(), PkeyPoolError> {
        if key == Pkey::DEFAULT {
            return Err(PkeyPoolError::NotAllocated(key));
        }
        let bit = 1u16 << key.index();
        let mut current = self.allocated.load(Ordering::Acquire);
        loop {
            if current & bit == 0 {
                return Err(PkeyPoolError::NotAllocated(key));
            }
            match self.allocated.compare_exchange_weak(
                current,
                current & !bit,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => current = actual,
            }
        }
    }

    /// Whether `key` is currently allocated.
    pub fn is_allocated(&self, key: Pkey) -> bool {
        self.allocated.load(Ordering::Acquire) & (1 << key.index()) != 0
    }

    /// Number of keys currently allocated, including key 0.
    pub fn allocated_count(&self) -> u32 {
        self.allocated.load(Ordering::Acquire).count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_hands_out_fifteen_keys_then_exhausts() {
        let pool = SharedPkeyPool::new();
        let mut keys = Vec::new();
        for _ in 0..15 {
            keys.push(pool.alloc().unwrap());
        }
        assert_eq!(pool.alloc(), Err(PkeyPoolError::Exhausted));
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 15);
        assert!(!keys.contains(&Pkey::DEFAULT));
    }

    #[test]
    fn clones_share_the_bitmap() {
        let pool = SharedPkeyPool::new();
        let handle = pool.clone();
        let k = pool.alloc().unwrap();
        assert!(handle.is_allocated(k));
        handle.free(k).unwrap();
        assert!(!pool.is_allocated(k));
    }

    #[test]
    fn key_zero_cannot_be_freed_and_double_free_rejected() {
        let pool = SharedPkeyPool::new();
        assert_eq!(pool.free(Pkey::DEFAULT), Err(PkeyPoolError::NotAllocated(Pkey::DEFAULT)));
        let k = pool.alloc().unwrap();
        pool.free(k).unwrap();
        assert_eq!(pool.free(k), Err(PkeyPoolError::NotAllocated(k)));
    }

    #[test]
    fn concurrent_allocation_yields_distinct_keys() {
        let pool = SharedPkeyPool::new();
        let handles: Vec<_> = (0..5)
            .map(|_| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    (0..3).map(|_| pool.alloc().unwrap()).collect::<Vec<_>>()
                })
            })
            .collect();
        let mut keys: Vec<Pkey> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 15, "15 threads' keys must be pairwise distinct");
        assert_eq!(pool.allocated_count(), 16);
    }
}
