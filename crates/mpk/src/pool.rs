//! Kernel-side protection-key allocation (`pkey_alloc` / `pkey_free`).

use core::fmt;

use crate::pkey::{Pkey, MAX_PKEYS};

/// Errors from the key-allocation interface.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PkeyPoolError {
    /// All 15 allocatable keys are in use (`ENOSPC`).
    Exhausted,
    /// The key was not allocated, or is key 0 (`EINVAL`).
    NotAllocated(Pkey),
}

impl fmt::Display for PkeyPoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PkeyPoolError::Exhausted => write!(f, "no protection keys available"),
            PkeyPoolError::NotAllocated(k) => write!(f, "protection key {k} is not allocated"),
        }
    }
}

impl std::error::Error for PkeyPoolError {}

/// Tracks which protection keys the "kernel" has handed out.
///
/// Key 0 is permanently allocated (it tags every untagged page) and can
/// never be freed, matching the Linux ABI.
#[derive(Clone, Debug)]
pub struct PkeyPool {
    allocated: u16,
}

impl PkeyPool {
    /// Creates a pool with only key 0 allocated.
    pub fn new() -> PkeyPool {
        PkeyPool { allocated: 1 }
    }

    /// Allocates the lowest free key (`pkey_alloc`).
    pub fn alloc(&mut self) -> Result<Pkey, PkeyPoolError> {
        for i in 1..MAX_PKEYS {
            if self.allocated & (1 << i) == 0 {
                self.allocated |= 1 << i;
                // Indices below `MAX_PKEYS` are always valid keys.
                return Ok(Pkey::new(i).expect("key index in range"));
            }
        }
        Err(PkeyPoolError::Exhausted)
    }

    /// Releases a previously allocated key (`pkey_free`).
    ///
    /// Freeing key 0 or an unallocated key fails, as in the kernel.
    pub fn free(&mut self, key: Pkey) -> Result<(), PkeyPoolError> {
        if key == Pkey::DEFAULT || self.allocated & (1 << key.index()) == 0 {
            return Err(PkeyPoolError::NotAllocated(key));
        }
        self.allocated &= !(1 << key.index());
        Ok(())
    }

    /// Whether `key` is currently allocated.
    pub fn is_allocated(&self, key: Pkey) -> bool {
        self.allocated & (1 << key.index()) != 0
    }

    /// Number of keys currently allocated, including key 0.
    pub fn allocated_count(&self) -> u32 {
        self.allocated.count_ones()
    }
}

impl Default for PkeyPool {
    fn default() -> PkeyPool {
        PkeyPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_hands_out_fifteen_keys_then_exhausts() {
        let mut pool = PkeyPool::new();
        let mut keys = Vec::new();
        for _ in 0..15 {
            keys.push(pool.alloc().unwrap());
        }
        assert_eq!(pool.alloc(), Err(PkeyPoolError::Exhausted));
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 15);
        assert!(!keys.contains(&Pkey::DEFAULT));
    }

    #[test]
    fn free_then_realloc_reuses_key() {
        let mut pool = PkeyPool::new();
        let k = pool.alloc().unwrap();
        pool.free(k).unwrap();
        assert!(!pool.is_allocated(k));
        assert_eq!(pool.alloc().unwrap(), k);
    }

    #[test]
    fn key_zero_cannot_be_freed() {
        let mut pool = PkeyPool::new();
        assert_eq!(pool.free(Pkey::DEFAULT), Err(PkeyPoolError::NotAllocated(Pkey::DEFAULT)));
    }

    #[test]
    fn double_free_rejected() {
        let mut pool = PkeyPool::new();
        let k = pool.alloc().unwrap();
        pool.free(k).unwrap();
        assert!(pool.free(k).is_err());
    }
}
