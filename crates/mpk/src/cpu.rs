//! Per-thread CPU state relevant to MPK.

use crate::pkru::Pkru;

/// The per-thread processor state the isolation scheme depends on.
///
/// Holds the PKRU register and the trap flag (used by the profiling
/// runtime's single-step fault recovery, §4.3.2 of the paper). PKRU lives
/// here — in a register, not in simulated memory — which is exactly the
/// threat-model requirement that adversaries cannot address it directly.
#[derive(Clone, Debug, Default)]
pub struct Cpu {
    pkru: Pkru,
    trap_flag: bool,
    /// Count of WRPKRU executions, for the evaluation's transition stats.
    wrpkru_count: u64,
}

impl Cpu {
    /// Creates a CPU with an all-access PKRU (single-compartment start).
    pub fn new() -> Cpu {
        Cpu::default()
    }

    /// Executes `WRPKRU`: replaces the PKRU register value.
    pub fn wrpkru(&mut self, value: u32) {
        self.pkru = Pkru::from_bits(value);
        self.wrpkru_count += 1;
    }

    /// Executes `RDPKRU`: reads the raw PKRU register value.
    pub fn rdpkru(&self) -> u32 {
        self.pkru.bits()
    }

    /// The PKRU register as a typed value.
    pub fn pkru(&self) -> Pkru {
        self.pkru
    }

    /// Replaces the PKRU register with a typed value (a WRPKRU).
    pub fn set_pkru(&mut self, pkru: Pkru) {
        self.wrpkru(pkru.bits());
    }

    /// Whether the trap flag (single-step) is set.
    pub fn trap_flag(&self) -> bool {
        self.trap_flag
    }

    /// Sets or clears the trap flag.
    ///
    /// With the flag set, the interpreter raises a single-step trap after
    /// retiring the next instruction, mirroring `EFLAGS.TF`.
    pub fn set_trap_flag(&mut self, on: bool) {
        self.trap_flag = on;
    }

    /// Number of WRPKRU instructions executed so far on this CPU.
    pub fn wrpkru_count(&self) -> u64 {
        self.wrpkru_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pkey::{Pkey, PkeyRights};

    #[test]
    fn wrpkru_counts_transitions() {
        let mut cpu = Cpu::new();
        assert_eq!(cpu.wrpkru_count(), 0);
        cpu.set_pkru(Pkru::deny_only(Pkey::new(1).unwrap()));
        cpu.set_pkru(Pkru::ALL_ACCESS);
        assert_eq!(cpu.wrpkru_count(), 2);
    }

    #[test]
    fn typed_and_raw_views_agree() {
        let mut cpu = Cpu::new();
        let pkru = Pkru::ALL_ACCESS.with_rights(Pkey::new(3).unwrap(), PkeyRights::ReadOnly);
        cpu.set_pkru(pkru);
        assert_eq!(cpu.rdpkru(), pkru.bits());
        assert_eq!(cpu.pkru(), pkru);
    }

    #[test]
    fn trap_flag_toggles() {
        let mut cpu = Cpu::new();
        assert!(!cpu.trap_flag());
        cpu.set_trap_flag(true);
        assert!(cpu.trap_flag());
        cpu.set_trap_flag(false);
        assert!(!cpu.trap_flag());
    }
}
