//! Protection keys and per-key rights.

use core::fmt;

/// Number of protection keys the architecture provides.
///
/// x86 MPK encodes the key in 4 bits of the page-table entry, so exactly 16
/// keys exist per address space.
pub const MAX_PKEYS: u8 = 16;

/// A memory protection key (0..16) as stored in a page-table entry.
///
/// Key 0 is the *default* key: every page that has never been tagged with
/// `pkey_mprotect` carries it, and the OS-visible ABI guarantees it is
/// allocated at process start.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pkey(u8);

impl Pkey {
    /// The default key carried by untagged pages.
    pub const DEFAULT: Pkey = Pkey(0);

    /// Creates a key from its architectural index.
    ///
    /// Returns `None` if `index` is outside the 4-bit key space.
    pub const fn new(index: u8) -> Option<Pkey> {
        if index < MAX_PKEYS {
            Some(Pkey(index))
        } else {
            None
        }
    }

    /// The architectural index of this key (0..16).
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Bit position of this key's access-disable bit within PKRU.
    pub(crate) const fn ad_bit(self) -> u32 {
        (self.0 as u32) * 2
    }

    /// Bit position of this key's write-disable bit within PKRU.
    pub(crate) const fn wd_bit(self) -> u32 {
        (self.0 as u32) * 2 + 1
    }
}

impl fmt::Debug for Pkey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkey{}", self.0)
    }
}

impl fmt::Display for Pkey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The kind of memory access being checked against PKRU.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A data load.
    Read,
    /// A data store.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// The rights PKRU grants for one key.
///
/// Mirrors the two-bit AD/WD encoding: `NoAccess` (AD=1), `ReadOnly` (AD=0,
/// WD=1), `ReadWrite` (AD=0, WD=0). The fourth encoding (AD=1, WD=1) is
/// architecturally identical to `NoAccess` and normalized to it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PkeyRights {
    /// Neither loads nor stores are permitted.
    NoAccess,
    /// Loads are permitted; stores fault.
    ReadOnly,
    /// Loads and stores are permitted.
    ReadWrite,
}

impl PkeyRights {
    /// Whether an access of `kind` is permitted under these rights.
    #[inline]
    pub const fn permits(self, kind: AccessKind) -> bool {
        match (self, kind) {
            (PkeyRights::NoAccess, _) => false,
            (PkeyRights::ReadOnly, AccessKind::Read) => true,
            (PkeyRights::ReadOnly, AccessKind::Write) => false,
            (PkeyRights::ReadWrite, _) => true,
        }
    }

    /// Decodes rights from raw (AD, WD) bits.
    #[inline]
    pub const fn from_bits(ad: bool, wd: bool) -> PkeyRights {
        match (ad, wd) {
            (true, _) => PkeyRights::NoAccess,
            (false, true) => PkeyRights::ReadOnly,
            (false, false) => PkeyRights::ReadWrite,
        }
    }

    /// Encodes rights into raw (AD, WD) bits.
    pub const fn to_bits(self) -> (bool, bool) {
        match self {
            PkeyRights::NoAccess => (true, true),
            PkeyRights::ReadOnly => (false, true),
            PkeyRights::ReadWrite => (false, false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_space_is_sixteen() {
        assert!(Pkey::new(0).is_some());
        assert!(Pkey::new(15).is_some());
        assert!(Pkey::new(16).is_none());
        assert!(Pkey::new(255).is_none());
    }

    #[test]
    fn rights_bit_roundtrip() {
        for rights in [PkeyRights::NoAccess, PkeyRights::ReadOnly, PkeyRights::ReadWrite] {
            let (ad, wd) = rights.to_bits();
            assert_eq!(PkeyRights::from_bits(ad, wd), rights);
        }
    }

    #[test]
    fn ad_wd_both_set_normalizes_to_no_access() {
        assert_eq!(PkeyRights::from_bits(true, false), PkeyRights::NoAccess);
        assert_eq!(PkeyRights::from_bits(true, true), PkeyRights::NoAccess);
    }

    #[test]
    fn permits_matrix() {
        assert!(!PkeyRights::NoAccess.permits(AccessKind::Read));
        assert!(!PkeyRights::NoAccess.permits(AccessKind::Write));
        assert!(PkeyRights::ReadOnly.permits(AccessKind::Read));
        assert!(!PkeyRights::ReadOnly.permits(AccessKind::Write));
        assert!(PkeyRights::ReadWrite.permits(AccessKind::Read));
        assert!(PkeyRights::ReadWrite.permits(AccessKind::Write));
    }

    #[test]
    fn bit_positions_follow_sdm_layout() {
        let k3 = Pkey::new(3).unwrap();
        assert_eq!(k3.ad_bit(), 6);
        assert_eq!(k3.wd_bit(), 7);
    }
}
