//! Software model of Intel Memory Protection Keys for Userspace (PKU).
//!
//! PKRU-Safe (EuroSys 2022) enforces compartment boundaries with Intel MPK:
//! every user page carries one of 16 *protection keys*, and the per-thread
//! `PKRU` register holds two rights bits per key — *access disable* (AD) and
//! *write disable* (WD). A load is permitted only if the AD bit for the
//! page's key is clear; a store additionally requires the WD bit to be
//! clear. The `WRPKRU` instruction updates the register without a syscall,
//! which is what makes MPK-based call gates cheap.
//!
//! This crate models that architecture exactly — key space, rights-bit
//! layout, register semantics, and the key-allocation interface the kernel
//! exposes (`pkey_alloc`/`pkey_free`) — so that the rest of the system can
//! be built and evaluated without MPK hardware. See `DESIGN.md` for the
//! substitution rationale.

mod cpu;
mod pkey;
mod pkru;
mod pool;
mod revoke;
mod shared;

pub use cpu::Cpu;
pub use pkey::{AccessKind, Pkey, PkeyRights, MAX_PKEYS};
pub use pkru::Pkru;
pub use pool::{PkeyPool, PkeyPoolError};
pub use revoke::{LeaseStamp, RevocationBarrier, WorkerEpoch};
pub use shared::SharedPkeyPool;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pkru_allows_key0_only_like_linux() {
        // Linux initializes PKRU to 0x5555_5554: all keys but key 0 are
        // access-disabled.
        let pkru = Pkru::linux_default();
        assert!(pkru.allows(Pkey::DEFAULT, AccessKind::Read));
        assert!(pkru.allows(Pkey::DEFAULT, AccessKind::Write));
        for k in 1..MAX_PKEYS {
            let key = Pkey::new(k).unwrap();
            assert!(!pkru.allows(key, AccessKind::Read));
            assert!(!pkru.allows(key, AccessKind::Write));
        }
    }

    #[test]
    fn wrpkru_roundtrip() {
        let mut cpu = Cpu::new();
        cpu.wrpkru(0xdead_beef & Pkru::VALID_MASK);
        assert_eq!(cpu.rdpkru(), 0xdead_beef & Pkru::VALID_MASK);
    }
}
