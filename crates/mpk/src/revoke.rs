//! Key-revocation primitives: lease generations and the deferred-reuse
//! revocation barrier.
//!
//! The key-virtualization layer multiplexes unbounded virtual keys onto
//! ≤15 hardware keys, which makes *recycling* the dangerous moment: a
//! PKRU value minted for a binding is just an integer in a register, and
//! nothing in the hardware model ties it to the binding it was derived
//! from. If the hardware key is stolen and rebound while some thread
//! still holds that integer, the stale rights now name the key's *next
//! owner* — a silent cross-tenant read primitive (the libmpk problem).
//!
//! Two cooperating mechanisms close it:
//!
//! 1. **Lease generations** ([`LeaseStamp`]): every binding carries a
//!    monotonic generation, published through a shared cell that the
//!    pool zeroes the instant the binding is revoked. Gate entry
//!    validates the stamp *before* loading the lease's PKRU — a stale
//!    stamp is a typed refusal, never silent stale access.
//! 2. **The revocation barrier** ([`RevocationBarrier`]): generations
//!    stop *new* rights from being granted, but a thread already inside
//!    a gate region still wears the old PKRU. So a stolen key is
//!    quarantined at a barrier **epoch**, and only rebound once every
//!    registered worker has *passed* that epoch — i.e. has dropped to
//!    base rights (parked) at least once since the steal. After that, no
//!    live PKRU register anywhere can still grant the recycled key.
//!
//! The ordering proof is small and worth stating. All operations below
//! are `SeqCst`, so they form one total order. A steal performs
//! `revoke(generation cell := 0)` → re-tag → `begin_revocation(epoch +=
//! 1)`. A gate entry performs `enter(entered_at := epoch)` → `validate
//! (generation cell)`. For any gate region and any steal, either the
//! entry's validation observes the revocation (the gate refuses with a
//! stale-lease error and immediately parks), or the entry's `enter`
//! preceded the steal's `begin_revocation` — in which case
//! `entered_at < steal_epoch` and the region blocks the key's reuse
//! until it exits. Either way no region ever *runs* under rights to a
//! key that has been handed to a new owner.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The sentinel a parked worker publishes: at base rights, outside every
/// gate region, it trivially passes every barrier epoch.
const PARKED: u64 = u64::MAX;

/// A binding's liveness proof: the generation the holder was granted,
/// plus the shared cell the pool publishes the binding's *current*
/// generation through (zeroed on revocation).
///
/// Cheap to clone and to check; gates validate it on every untrusted
/// entry.
#[derive(Clone, Debug)]
pub struct LeaseStamp {
    generation: u64,
    current: Arc<AtomicU64>,
}

impl LeaseStamp {
    /// Stamps a lease at `generation` against the pool's `current` cell.
    pub fn new(generation: u64, current: Arc<AtomicU64>) -> LeaseStamp {
        LeaseStamp { generation, current }
    }

    /// The generation this lease was granted at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The binding's live generation right now (0 once revoked).
    pub fn current_generation(&self) -> u64 {
        self.current.load(Ordering::SeqCst)
    }

    /// Whether the lease still names the binding's live generation.
    /// `false` means the hardware key has been revoked (stolen or
    /// evicted) since this stamp was minted.
    pub fn is_current(&self) -> bool {
        self.current_generation() == self.generation
    }
}

/// A worker's published PKRU epoch: the barrier epoch it observed when
/// it entered its current gate region, or [`PARKED`] while it sits at
/// base rights.
#[derive(Debug)]
struct EpochCell {
    entered_at: AtomicU64,
}

/// The revocation barrier: a monotonically increasing epoch plus the set
/// of workers whose PKRU registers could carry tenant rights.
///
/// A steal quarantines the stolen key at `begin_revocation()`'s epoch;
/// the pool rebinds it only once [`RevocationBarrier::all_passed`] holds
/// for that epoch — every registered worker has parked (or entered a
/// fresh region) since the steal, so no register still wears the old
/// rights.
#[derive(Debug, Default)]
pub struct RevocationBarrier {
    epoch: AtomicU64,
    workers: Mutex<Vec<Arc<EpochCell>>>,
}

impl RevocationBarrier {
    /// A fresh barrier at epoch 0 with no registered workers.
    pub fn new() -> RevocationBarrier {
        RevocationBarrier::default()
    }

    /// Registers a worker, returning the handle it publishes its PKRU
    /// epoch through. The handle deregisters on drop, so a worker that
    /// dies (panic, supervision teardown) can never wedge the barrier.
    pub fn register(self: &Arc<Self>) -> WorkerEpoch {
        let cell = Arc::new(EpochCell { entered_at: AtomicU64::new(PARKED) });
        self.workers.lock().expect("barrier registry lock").push(Arc::clone(&cell));
        WorkerEpoch { cell, barrier: Arc::clone(self) }
    }

    /// The current barrier epoch.
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Opens a new revocation: bumps the epoch and returns the value a
    /// quarantined key must wait out.
    pub fn begin_revocation(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Whether every registered worker has passed `epoch`: each is
    /// either parked (at base rights) or inside a region entered at or
    /// after the revocation — so none can still wear rights minted
    /// before it. Vacuously true with no workers registered.
    pub fn all_passed(&self, epoch: u64) -> bool {
        self.workers
            .lock()
            .expect("barrier registry lock")
            .iter()
            .all(|cell| cell.entered_at.load(Ordering::SeqCst) >= epoch)
    }

    /// Number of workers currently registered.
    pub fn registered(&self) -> usize {
        self.workers.lock().expect("barrier registry lock").len()
    }
}

/// A registered worker's handle on the barrier. Call [`WorkerEpoch::enter`]
/// when the worker's PKRU leaves base rights (gate depth 0 → 1) and
/// [`WorkerEpoch::park`] when it returns (depth 1 → 0). Dropping the
/// handle deregisters the worker — a respawning worker never deadlocks
/// the barrier.
#[derive(Debug)]
pub struct WorkerEpoch {
    cell: Arc<EpochCell>,
    barrier: Arc<RevocationBarrier>,
}

impl WorkerEpoch {
    /// Publishes entry into a gate region at the current barrier epoch.
    pub fn enter(&self) {
        self.cell.entered_at.store(self.barrier.epoch.load(Ordering::SeqCst), Ordering::SeqCst);
    }

    /// Publishes return to base rights: the worker passes every epoch.
    pub fn park(&self) {
        self.cell.entered_at.store(PARKED, Ordering::SeqCst);
    }

    /// Whether this worker is currently parked at base rights.
    pub fn parked(&self) -> bool {
        self.cell.entered_at.load(Ordering::SeqCst) == PARKED
    }
}

impl Drop for WorkerEpoch {
    fn drop(&mut self) {
        let mut workers = self.barrier.workers.lock().expect("barrier registry lock");
        if let Some(i) = workers.iter().position(|c| Arc::ptr_eq(c, &self.cell)) {
            workers.swap_remove(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_revoked_stamp_is_stale_and_a_rebound_one_stays_stale() {
        let current = Arc::new(AtomicU64::new(7));
        let stamp = LeaseStamp::new(7, Arc::clone(&current));
        assert!(stamp.is_current());
        current.store(0, Ordering::SeqCst); // revoked
        assert!(!stamp.is_current());
        current.store(8, Ordering::SeqCst); // rebound at a new generation
        assert!(!stamp.is_current(), "an old stamp never matches a newer generation");
        assert_eq!(stamp.generation(), 7);
        assert_eq!(stamp.current_generation(), 8);
    }

    #[test]
    fn barrier_passes_vacuously_and_blocks_on_a_pre_steal_region() {
        let barrier = Arc::new(RevocationBarrier::new());
        assert!(barrier.all_passed(barrier.begin_revocation()), "no workers → every epoch passes");

        let worker = barrier.register();
        assert_eq!(barrier.registered(), 1);
        // Parked workers pass every epoch.
        assert!(barrier.all_passed(barrier.begin_revocation()));
        // A region entered *before* the steal blocks the steal's epoch.
        worker.enter();
        let steal = barrier.begin_revocation();
        assert!(!barrier.all_passed(steal), "an in-flight region must block reuse");
        // Exiting the region (parking) releases it.
        worker.park();
        assert!(barrier.all_passed(steal));
        // A region entered *after* the steal does not block it.
        worker.enter();
        assert!(barrier.all_passed(steal), "post-steal entries carry post-steal rights");
    }

    #[test]
    fn dropping_a_workers_handle_deregisters_it() {
        let barrier = Arc::new(RevocationBarrier::new());
        let worker = barrier.register();
        worker.enter();
        let steal = barrier.begin_revocation();
        assert!(!barrier.all_passed(steal));
        // The worker dies mid-region (panic / supervision teardown): its
        // handle drops, and the barrier must not deadlock on its ghost.
        drop(worker);
        assert_eq!(barrier.registered(), 0);
        assert!(barrier.all_passed(steal), "a dead worker never wedges the barrier");
    }
}
