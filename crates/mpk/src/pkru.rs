//! The PKRU rights register.

use core::fmt;

use crate::pkey::{AccessKind, Pkey, PkeyRights, MAX_PKEYS};

/// The 32-bit Protection Key Rights register for Userspace.
///
/// Bit `2i` is the access-disable (AD) bit and bit `2i + 1` the
/// write-disable (WD) bit for key `i`. A value of zero grants read/write
/// access through every key; Linux boots threads with `0x5555_5554`
/// (everything but key 0 access-disabled).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pkru(u32);

impl Pkru {
    /// Mask of the architecturally defined bits (all 32 are defined for 16
    /// keys; kept for clarity at call sites that sanitize raw values).
    pub const VALID_MASK: u32 = u32::MAX;

    /// A register value granting read/write access through every key.
    pub const ALL_ACCESS: Pkru = Pkru(0);

    /// Creates a register from its raw 32-bit value.
    pub const fn from_bits(bits: u32) -> Pkru {
        Pkru(bits)
    }

    /// The raw 32-bit register value.
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// The value Linux initializes threads with: only key 0 accessible.
    pub const fn linux_default() -> Pkru {
        Pkru(0x5555_5554)
    }

    /// A register granting read/write through every key *except* `denied`,
    /// which is fully access-disabled.
    ///
    /// This is the value PKRU-Safe's call gates load when entering the
    /// untrusted compartment: everything stays reachable except the pages
    /// keyed for trusted memory.
    pub fn deny_only(denied: Pkey) -> Pkru {
        let mut pkru = Pkru::ALL_ACCESS;
        pkru.set_rights(denied, PkeyRights::NoAccess);
        pkru
    }

    /// The rights currently granted for `key`.
    #[inline]
    pub const fn rights(self, key: Pkey) -> PkeyRights {
        let ad = (self.0 >> key.ad_bit()) & 1 == 1;
        let wd = (self.0 >> key.wd_bit()) & 1 == 1;
        PkeyRights::from_bits(ad, wd)
    }

    /// Replaces the rights granted for `key`.
    pub fn set_rights(&mut self, key: Pkey, rights: PkeyRights) {
        let (ad, wd) = rights.to_bits();
        let mask = (1u32 << key.ad_bit()) | (1u32 << key.wd_bit());
        self.0 &= !mask;
        self.0 |= (ad as u32) << key.ad_bit();
        self.0 |= (wd as u32) << key.wd_bit();
    }

    /// Returns a copy with the rights for `key` replaced.
    #[must_use]
    pub fn with_rights(mut self, key: Pkey, rights: PkeyRights) -> Pkru {
        self.set_rights(key, rights);
        self
    }

    /// Whether an access of `kind` through `key` is permitted.
    ///
    /// This is the per-access rights check on the software-TLB hit path
    /// (the simulated analog of the hardware PKRU comparison), so it must
    /// inline into the caller.
    #[inline]
    pub const fn allows(self, key: Pkey, kind: AccessKind) -> bool {
        self.rights(key).permits(kind)
    }
}

impl Default for Pkru {
    fn default() -> Pkru {
        Pkru::ALL_ACCESS
    }
}

impl fmt::Debug for Pkru {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pkru({:#010x})", self.0)
    }
}

impl fmt::Display for Pkru {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render as a compact rights map, most-restricted keys only.
        write!(f, "{:#010x} [", self.0)?;
        let mut first = true;
        for i in 0..MAX_PKEYS {
            // All key indices below `MAX_PKEYS` are valid by construction.
            let key = Pkey::new(i).expect("key index in range");
            let rights = self.rights(key);
            if rights != PkeyRights::ReadWrite {
                if !first {
                    write!(f, " ")?;
                }
                first = false;
                let tag = match rights {
                    PkeyRights::NoAccess => "-",
                    PkeyRights::ReadOnly => "r",
                    PkeyRights::ReadWrite => unreachable!(),
                };
                write!(f, "{key}:{tag}")?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_access_permits_everything() {
        let pkru = Pkru::ALL_ACCESS;
        for i in 0..MAX_PKEYS {
            let key = Pkey::new(i).unwrap();
            assert!(pkru.allows(key, AccessKind::Read));
            assert!(pkru.allows(key, AccessKind::Write));
        }
    }

    #[test]
    fn deny_only_blocks_exactly_one_key() {
        let trusted = Pkey::new(1).unwrap();
        let pkru = Pkru::deny_only(trusted);
        assert!(!pkru.allows(trusted, AccessKind::Read));
        assert!(!pkru.allows(trusted, AccessKind::Write));
        for i in 0..MAX_PKEYS {
            let key = Pkey::new(i).unwrap();
            if key != trusted {
                assert!(pkru.allows(key, AccessKind::Read));
                assert!(pkru.allows(key, AccessKind::Write));
            }
        }
    }

    #[test]
    fn set_rights_is_idempotent_and_isolated() {
        let mut pkru = Pkru::ALL_ACCESS;
        let k2 = Pkey::new(2).unwrap();
        let k5 = Pkey::new(5).unwrap();
        pkru.set_rights(k2, PkeyRights::ReadOnly);
        pkru.set_rights(k5, PkeyRights::NoAccess);
        pkru.set_rights(k2, PkeyRights::ReadOnly);
        assert_eq!(pkru.rights(k2), PkeyRights::ReadOnly);
        assert_eq!(pkru.rights(k5), PkeyRights::NoAccess);
        assert_eq!(pkru.rights(Pkey::DEFAULT), PkeyRights::ReadWrite);
    }

    #[test]
    fn display_lists_restricted_keys() {
        let pkru = Pkru::ALL_ACCESS.with_rights(Pkey::new(1).unwrap(), PkeyRights::NoAccess);
        let shown = format!("{pkru}");
        assert!(shown.contains("1:-"), "{shown}");
    }
}
