//! Property tests for the shared, lock-free key pool.
//!
//! The property mirrors the kernel contract of `pkey_alloc`: across any
//! interleaving of allocations and frees from any number of threads, the
//! pool never hands the same live key to two owners and never exceeds the
//! hardware's 16-key budget (key 0 is the fixed default, leaving 15
//! allocatable).

use std::collections::HashSet;
use std::sync::{Arc, Mutex};
use std::thread;

use pkru_mpk::{Pkey, SharedPkeyPool, MAX_PKEYS};
use proptest::prelude::*;

/// One thread's deterministic op sequence against the shared pool.
/// Returns an error message on the first violated invariant.
fn hammer(
    pool: &SharedPkeyPool,
    live: &Arc<Mutex<HashSet<Pkey>>>,
    seed: u64,
    ops: u32,
) -> Result<(), String> {
    let mut state = seed | 1;
    let mut owned: Vec<Pkey> = Vec::new();
    for _ in 0..ops {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        // Bias towards allocation so the pool sees real contention.
        if state >> 63 == 0 || owned.is_empty() {
            // Exhaustion (`Err`) is a legal outcome under contention.
            if let Ok(key) = pool.alloc() {
                if key == Pkey::DEFAULT {
                    return Err("allocated the default key".into());
                }
                if !live.lock().unwrap().insert(key) {
                    return Err(format!("key {key:?} handed out while still live"));
                }
                owned.push(key);
            }
        } else {
            let key = owned.swap_remove((state as usize >> 32) % owned.len());
            if !live.lock().unwrap().remove(&key) {
                return Err(format!("freed key {key:?} was not live"));
            }
            pool.free(key).map_err(|e| format!("free({key:?}): {e:?}"))?;
        }
        // The count includes the permanent key 0, so the hardware budget
        // is exactly MAX_PKEYS live keys at any instant.
        let count = pool.allocated_count();
        if count > u32::from(MAX_PKEYS) {
            return Err(format!("{count} keys allocated, budget is {MAX_PKEYS}"));
        }
    }
    // Drain: return everything so the pool ends balanced.
    for key in owned {
        live.lock().unwrap().remove(&key);
        pool.free(key).map_err(|e| format!("drain free({key:?}): {e:?}"))?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_alloc_free_never_double_allocates(
        seed in 0u64..u64::MAX,
        threads in 2usize..7,
        ops in 16u32..80,
    ) {
        let pool = SharedPkeyPool::new();
        let live = Arc::new(Mutex::new(HashSet::new()));
        let results: Vec<Result<(), String>> = thread::scope(|scope| {
            (0..threads)
                .map(|t| {
                    let (pool, live) = (&pool, &live);
                    scope.spawn(move || hammer(pool, live, seed ^ (t as u64).wrapping_mul(0x9e37), ops))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for result in results {
            prop_assert!(result.is_ok(), "invariant violated: {:?}", result);
        }
        // Every thread drained its keys: only the permanent key 0 remains.
        prop_assert!(live.lock().unwrap().is_empty());
        prop_assert_eq!(pool.allocated_count(), 1);
    }
}
