//! The headline isolation property: tenant A never reads tenant B.
//!
//! Each case builds a fresh shared host, registers ≥ 20 tenants over the
//! ≤ 15 hardware keys (so binds *must* steal), churns bind/evict from
//! concurrent threads for key pressure and scheduling noise, and then
//! lets attacker tenant A run a generated `analysis::redteam` attack
//! program inside its compartment — plus direct PKRU probes of victim
//! tenant B's pages. Every attack must be stopped somewhere in the
//! defense in depth: statically by the scanner, dynamically by a PKRU
//! denial/trap, or by the quarantine breaker. A successful read of one
//! byte of B's memory is `Uncaught` — an immediate failure.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use lir::{Interp, Machine, MachineConfig, SharedHost, SyscallFilter};
use pkru_analysis::redteam::{generate_any, Catch, VET_QUARANTINE_THRESHOLD};
use pkru_analysis::scan_module;
use pkru_handler::{MpkPolicy, ViolationHandler};
use pkru_tenant::{tenant_canary, TenantError, TenantRegistry};
use proptest::prelude::*;

/// Deterministic churn: one thread binding and evicting random non-A,
/// non-B tenants until the attacker finishes, keeping every hardware key
/// contended. `Busy`/`Pinned` are legal outcomes under contention;
/// anything else is an invariant breach.
fn churn(
    registry: &TenantRegistry,
    stop: &AtomicBool,
    attacker: usize,
    victim: usize,
    seed: u64,
) -> Result<(), String> {
    let mut state = seed | 1;
    while !stop.load(Ordering::Relaxed) {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let id = (state >> 33) as usize % registry.len();
        if id == attacker || id == victim {
            continue;
        }
        let evict = state & 1 == 1;
        let outcome =
            if evict { registry.evict(id).map(|_| ()) } else { registry.bind(id).map(drop) };
        match outcome {
            Ok(()) | Err(TenantError::Busy) | Err(TenantError::Pinned(_)) => {}
            Err(e) => return Err(format!("churn {id}: {e}")),
        }
        let count = registry.pool().allocated_count();
        if count > 16 {
            return Err(format!("{count} hardware keys live, budget is 16"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn tenant_a_never_reads_tenant_b(
        seed in 0u64..u64::MAX,
        tenants in 20usize..28,
        victim_pick in 0usize..1024,
    ) {
        let host = SharedHost::new();
        let mut registry = TenantRegistry::new(&host).expect("registry");
        registry
            .populate(tenants, MpkPolicy::Quarantine { threshold: VET_QUARANTINE_THRESHOLD })
            .expect("populate");
        let attacker = (seed as usize) % tenants;
        let victim = {
            let v = victim_pick % tenants;
            if v == attacker { (v + 1) % tenants } else { v }
        };
        let victim_base = registry.tenant(victim).unwrap().base();

        let attack = generate_any(seed);
        let module = attack.module();

        let stop = AtomicBool::new(false);
        let (catch, churn_results) = thread::scope(|scope| {
            let churners: Vec<_> = (0..2)
                .map(|t| {
                    let (registry, stop) = (&registry, &stop);
                    scope.spawn(move || {
                        churn(registry, stop, attacker, victim, seed ^ (t + 1) as u64)
                    })
                })
                .collect();

            // Layer 1: the adversarial scanner, exactly as the serve-time
            // vet harness runs it.
            let catch = if !scan_module(&module).is_empty() {
                Catch::Static(scan_module(&module))
            } else {
                // Layer 2: run the attack inside A's compartment on the
                // *shared* host — A's untrusted PKRU, A's grant-scoped
                // quarantine handler, the module's own allow-list.
                let mut machine =
                    Machine::on_host(MachineConfig::default(), &host).expect("attacker machine");
                let lease = registry.bind(attacker).expect("bind attacker");
                machine.gates.set_untrusted_pkru(lease.pkru());
                let handler = Arc::new(
                    ViolationHandler::new(
                        MpkPolicy::Quarantine { threshold: VET_QUARANTINE_THRESHOLD },
                        attacker,
                    )
                    .with_grant_scope(machine.trusted_pkey()),
                );
                machine.set_violation_handler(Arc::clone(&handler));
                machine.install_syscall_filter(SyscallFilter::from_module(&module));
                let outcome = Interp::new(&module, &mut machine).run("main", &[]);
                // Snapshot the breaker *before* the probes below: a probe
                // tripping it must not retroactively reclassify an
                // otherwise-uncaught attack as dynamically stopped.
                let tripped_by_attack = handler.tripped();

                // Direct cross-tenant probes under A's leased rights: the
                // victim's pages are either parked (no-access key) or
                // bound to a key A's PKRU denies — and the grant-scoped
                // handler can never single-step an out-of-scope fault. A
                // single successful read is the defense gap this whole PR
                // exists to close.
                let direct_read = machine
                    .gates
                    .enter_untrusted(&mut machine.cpu)
                    .ok()
                    .and_then(|_| {
                        let read = machine.mem_read(victim_base).ok();
                        let _ = machine.gates.exit_untrusted(&mut machine.cpu);
                        read
                    });
                let raw_read = host.space().read_u64(lease.pkru(), victim_base).ok();
                drop(lease);

                if direct_read.is_some() || raw_read.is_some() {
                    Catch::Uncaught
                } else {
                    match outcome {
                        Err(trap) => Catch::Dynamic(trap.to_string()),
                        Ok(_) if tripped_by_attack => {
                            Catch::Dynamic("quarantine breaker tripped".into())
                        }
                        Ok(_) => Catch::Uncaught,
                    }
                }
            };
            stop.store(true, Ordering::Relaxed);
            let churn_results: Vec<Result<(), String>> =
                churners.into_iter().map(|h| h.join().unwrap()).collect();
            (catch, churn_results)
        });

        for result in churn_results {
            prop_assert!(result.is_ok(), "churn invariant violated: {:?}", result);
        }
        prop_assert!(
            catch.caught(),
            "attack {:?} (seed {seed}) reached tenant {victim}'s pages uncaught",
            attack.kind
        );
        // The victim's canary survived the whole assault, bit for bit.
        let canary = host
            .space()
            .read_u64(pkru_mpk::Pkru::ALL_ACCESS, victim_base)
            .expect("trusted read of the victim canary");
        prop_assert_eq!(canary, tenant_canary(victim));
        // Key pressure never overflowed the hardware budget.
        prop_assert!(registry.pool().allocated_count() <= 16);
    }
}
