//! Key-recycling edge cases under concurrency.
//!
//! The single-thread recycling properties (free-then-rebind reuses the
//! same hardware key, double-evict is idempotent, pinned bindings are
//! never stolen) live as unit tests next to `VirtualPkeyPool`; this file
//! drives the same invariants from N threads: across any interleaving of
//! bind/evict storms, the pool never exceeds the 16-key hardware budget,
//! never hands one hardware key to two live bindings, and every
//! `Busy`/`Pinned` refusal is transient.

use std::collections::HashMap;
use std::sync::Mutex;
use std::thread;

use pkru_mpk::{Pkey, SharedPkeyPool};
use pkru_tenant::{VirtualPkey, VirtualPkeyError, VirtualPkeyPool};
use pkru_vmem::{Prot, SharedSpace, PAGE_SIZE};
use proptest::prelude::*;

/// One thread's seeded storm against the shared pool. `claims` maps a
/// hardware key to the virtual key currently wearing it — two live
/// bindings on one hardware key is the cross-tenant disaster.
fn storm(
    pool: &VirtualPkeyPool,
    vkeys: &[VirtualPkey],
    claims: &Mutex<HashMap<Pkey, VirtualPkey>>,
    seed: u64,
    ops: u32,
) -> Result<(), String> {
    let mut state = seed | 1;
    for _ in 0..ops {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let vkey = vkeys[(state >> 33) as usize % vkeys.len()];
        if state & 1 == 0 {
            match pool.bind(vkey) {
                Ok(guard) => {
                    let hw = guard.hw_key();
                    {
                        let mut claims = claims.lock().unwrap();
                        if let Some(other) = claims.get(&hw) {
                            if *other != vkey {
                                return Err(format!(
                                    "hardware key {hw:?} worn by {other} while bound to {vkey}"
                                ));
                            }
                        }
                        claims.insert(hw, vkey);
                    }
                    // Hold the pin briefly so steals race real guards,
                    // then release the claim before the guard drops.
                    std::thread::yield_now();
                    claims.lock().unwrap().remove(&hw);
                    drop(guard);
                }
                // Legal refusals under contention; anything else is a bug.
                Err(VirtualPkeyError::AllPinned) | Err(VirtualPkeyError::Exhausted) => {}
                Err(e) => return Err(format!("bind {vkey}: {e}")),
            }
        } else {
            match pool.evict(vkey) {
                Ok(_) => {} // true = evicted, false = double-evict no-op
                Err(VirtualPkeyError::Pinned(_)) => {}
                Err(e) => return Err(format!("evict {vkey}: {e}")),
            }
        }
        let count = pool.allocated_count();
        if count > 16 {
            return Err(format!("{count} hardware keys live, budget is 16"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn bind_evict_storm_respects_the_hardware_budget(
        seed in 0u64..u64::MAX,
        threads in 2usize..6,
        vkey_count in 18usize..30,
        ops in 40u32..120,
    ) {
        let space = SharedSpace::new();
        let hw = SharedPkeyPool::new();
        let pool = VirtualPkeyPool::new(space.clone(), hw).expect("pool");
        let vkeys: Vec<VirtualPkey> = (0..vkey_count)
            .map(|i| {
                let vkey = pool.register();
                let base = 0x3800_0000_0000 + i as u64 * (4 * PAGE_SIZE);
                space.mmap_at(base, 2 * PAGE_SIZE, Prot::READ_WRITE).expect("map");
                pool.add_region(vkey, base, 2 * PAGE_SIZE, Prot::READ_WRITE).expect("region");
                vkey
            })
            .collect();
        let claims = Mutex::new(HashMap::new());

        let results: Vec<Result<(), String>> = thread::scope(|scope| {
            (0..threads)
                .map(|t| {
                    let (pool, vkeys, claims) = (&pool, vkeys.as_slice(), &claims);
                    scope.spawn(move || {
                        storm(pool, vkeys, claims, seed ^ (t as u64).wrapping_mul(0x9e37), ops)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for result in results {
            prop_assert!(result.is_ok(), "storm invariant violated: {:?}", result);
        }
        prop_assert!(pool.allocated_count() <= 16);

        // Quiesced recycling: evict everything, then bind one tenant
        // twice — the freed hardware key must come straight back.
        for vkey in &vkeys {
            pool.evict(*vkey).expect("drain evict");
            pool.evict(*vkey).expect("double evict is idempotent");
        }
        let first = pool.bind(vkeys[0]).expect("rebind").hw_key();
        pool.evict(vkeys[0]).expect("evict again");
        let second = pool.bind(vkeys[0]).expect("rebind again").hw_key();
        prop_assert_eq!(first, second, "free-then-rebind must reuse the same hardware key");
    }
}
