//! Key-recycling edge cases under concurrency.
//!
//! The single-thread recycling properties (free-then-rebind reuses the
//! same hardware key, double-evict is idempotent, pinned bindings are
//! never stolen) live as unit tests next to `VirtualPkeyPool`; this file
//! drives the same invariants from N threads: across any interleaving of
//! bind/evict storms, the pool never exceeds the 16-key hardware budget,
//! never hands one hardware key to two live bindings, and every
//! `Busy`/`Pinned` refusal is transient.

use std::collections::HashMap;
use std::sync::Mutex;
use std::thread;

use pkru_mpk::{Pkey, PkeyRights, Pkru, SharedPkeyPool};
use pkru_tenant::{VirtualPkey, VirtualPkeyError, VirtualPkeyPool};
use pkru_vmem::{Prot, SharedSpace, PAGE_SIZE};
use proptest::prelude::*;

/// One thread's seeded storm against the shared pool. `claims` maps a
/// hardware key to the virtual key currently wearing it — two live
/// bindings on one hardware key is the cross-tenant disaster.
fn storm(
    pool: &VirtualPkeyPool,
    vkeys: &[VirtualPkey],
    claims: &Mutex<HashMap<Pkey, VirtualPkey>>,
    seed: u64,
    ops: u32,
) -> Result<(), String> {
    let mut state = seed | 1;
    for _ in 0..ops {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let vkey = vkeys[(state >> 33) as usize % vkeys.len()];
        if state & 1 == 0 {
            match pool.bind(vkey) {
                Ok(guard) => {
                    let hw = guard.hw_key();
                    {
                        let mut claims = claims.lock().unwrap();
                        if let Some(other) = claims.get(&hw) {
                            if *other != vkey {
                                return Err(format!(
                                    "hardware key {hw:?} worn by {other} while bound to {vkey}"
                                ));
                            }
                        }
                        claims.insert(hw, vkey);
                    }
                    // Hold the pin briefly so steals race real guards,
                    // then release the claim before the guard drops.
                    std::thread::yield_now();
                    claims.lock().unwrap().remove(&hw);
                    drop(guard);
                }
                // Legal refusals under contention; anything else is a bug.
                Err(VirtualPkeyError::AllPinned) | Err(VirtualPkeyError::Exhausted) => {}
                Err(e) => return Err(format!("bind {vkey}: {e}")),
            }
        } else {
            match pool.evict(vkey) {
                Ok(_) => {} // true = evicted, false = double-evict no-op
                Err(VirtualPkeyError::Pinned(_)) => {}
                Err(e) => return Err(format!("evict {vkey}: {e}")),
            }
        }
        let count = pool.allocated_count();
        if count > 16 {
            return Err(format!("{count} hardware keys live, budget is 16"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn bind_evict_storm_respects_the_hardware_budget(
        seed in 0u64..u64::MAX,
        threads in 2usize..6,
        vkey_count in 18usize..30,
        ops in 40u32..120,
    ) {
        let space = SharedSpace::new();
        let hw = SharedPkeyPool::new();
        let pool = VirtualPkeyPool::new(space.clone(), hw).expect("pool");
        let vkeys: Vec<VirtualPkey> = (0..vkey_count)
            .map(|i| {
                let vkey = pool.register();
                let base = 0x3800_0000_0000 + i as u64 * (4 * PAGE_SIZE);
                space.mmap_at(base, 2 * PAGE_SIZE, Prot::READ_WRITE).expect("map");
                pool.add_region(vkey, base, 2 * PAGE_SIZE, Prot::READ_WRITE).expect("region");
                vkey
            })
            .collect();
        let claims = Mutex::new(HashMap::new());

        let results: Vec<Result<(), String>> = thread::scope(|scope| {
            (0..threads)
                .map(|t| {
                    let (pool, vkeys, claims) = (&pool, vkeys.as_slice(), &claims);
                    scope.spawn(move || {
                        storm(pool, vkeys, claims, seed ^ (t as u64).wrapping_mul(0x9e37), ops)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for result in results {
            prop_assert!(result.is_ok(), "storm invariant violated: {:?}", result);
        }
        prop_assert!(pool.allocated_count() <= 16);

        // Quiesced recycling: evict everything, then bind one tenant
        // twice — the freed hardware key must come straight back.
        for vkey in &vkeys {
            pool.evict(*vkey).expect("drain evict");
            pool.evict(*vkey).expect("double evict is idempotent");
        }
        let first = pool.bind(vkeys[0]).expect("rebind").hw_key();
        pool.evict(vkeys[0]).expect("evict again");
        let second = pool.bind(vkeys[0]).expect("rebind again").hw_key();
        prop_assert_eq!(first, second, "free-then-rebind must reuse the same hardware key");
    }
}

/// One worker's storm of binds, evictions, respawns and *direct*
/// stale-PKRU probes. After releasing a binding (and maybe evicting it),
/// the worker re-enters a gate region wielding the PKRU it minted for
/// that binding and reads a different tenant's pages: under the
/// revocation protocol that read must fault every single time — if the
/// lease generation is still live the hardware key cannot have moved,
/// and if it was stolen the quarantine cannot mature while this worker's
/// entry epoch predates the steal.
fn probe_storm(
    pool: &VirtualPkeyPool,
    space: &SharedSpace,
    vkeys: &[VirtualPkey],
    bases: &[u64],
    seed: u64,
    ops: u32,
) -> Result<(), String> {
    let mut epoch = pool.barrier().register();
    let mut state = seed | 1;
    for _ in 0..ops {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let a = (state >> 33) as usize % vkeys.len();
        let b = (a + 1 + (state >> 17) as usize % (vkeys.len() - 1)) % vkeys.len();
        let (pkru, stamp) = match pool.bind(vkeys[a]) {
            Ok(guard) => {
                let hw = guard.hw_key();
                let pkru = Pkru::linux_default().with_rights(hw, PkeyRights::ReadWrite);
                // A live lease reads its own pages.
                if let Err(fault) = space.read_u64(pkru, bases[a]) {
                    return Err(format!("live binding faulted on its own pages: {fault:?}"));
                }
                (pkru, guard.stamp())
            }
            // Legal under contention (every key briefly quarantined).
            Err(VirtualPkeyError::AllPinned) | Err(VirtualPkeyError::Exhausted) => continue,
            Err(e) => return Err(format!("bind {}: {e}", vkeys[a])),
        };
        // The guard is dropped: the binding is unleased and stealable.
        // Sometimes evict it ourselves so the generation is revoked on
        // this very thread, not just by racing stealers.
        if state & 3 == 0 {
            let _ = pool.evict(vkeys[a]);
        }
        // The stale probe, inside a gate region: entry epoch first, then
        // the generation check — exactly the order the real gates use.
        epoch.enter();
        if stamp.is_current() && space.read_u64(pkru, bases[b]).is_ok() {
            epoch.park();
            return Err(format!("stale PKRU for {} read {}'s pages", vkeys[a], vkeys[b]));
        }
        epoch.park();
        // Worker respawn: drop the epoch handle and re-register. The
        // barrier must keep maturing keys without it.
        if state & 15 == 0 {
            epoch = pool.barrier().register();
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn recycling_storm_defeats_stale_pkru_probes(
        seed in 0u64..u64::MAX,
        workers in 2usize..5,
        vkey_count in 18usize..26,
        ops in 30u32..80,
    ) {
        let space = SharedSpace::new();
        let hw = SharedPkeyPool::new();
        let pool = VirtualPkeyPool::new(space.clone(), hw).expect("pool");
        let mut bases = Vec::new();
        let vkeys: Vec<VirtualPkey> = (0..vkey_count)
            .map(|i| {
                let vkey = pool.register();
                let base = 0x4600_0000_0000 + i as u64 * (4 * PAGE_SIZE);
                space.mmap_at(base, 2 * PAGE_SIZE, Prot::READ_WRITE).expect("map");
                pool.add_region(vkey, base, 2 * PAGE_SIZE, Prot::READ_WRITE).expect("region");
                bases.push(base);
                vkey
            })
            .collect();

        let results: Vec<Result<(), String>> = thread::scope(|scope| {
            (0..workers)
                .map(|t| {
                    let (pool, space, vkeys, bases) =
                        (&pool, &space, vkeys.as_slice(), bases.as_slice());
                    scope.spawn(move || {
                        probe_storm(pool, space, vkeys, bases, seed ^ (t as u64) << 7, ops)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for result in results {
            prop_assert!(result.is_ok(), "stale-PKRU probe invariant violated: {:?}", result);
        }

        // Every worker has deregistered: the barrier is vacuous, so a
        // full drain-and-rebind sweep must terminate — quarantined keys
        // mature immediately and every tenant binds without deadlock.
        for vkey in &vkeys {
            pool.evict(*vkey).expect("drain evict");
        }
        prop_assert_eq!(pool.barrier().registered(), 0);
        for vkey in &vkeys {
            let guard = pool.bind(*vkey).expect("post-storm rebind must not deadlock");
            drop(guard);
        }
        prop_assert!(pool.allocated_count() <= 16);
        prop_assert!(pool.deferred_count() <= 16);
    }
}
