//! Virtual protection keys multiplexed onto the hardware key space.
//!
//! MPK has 16 keys per process and one of them is the untagged default —
//! a hard cap that a multi-tenant server blows through immediately. The
//! libmpk answer (and ours) is *key virtualization*: tenants hold
//! unbounded **virtual** keys, and a [`VirtualPkeyPool`] binds them to
//! hardware keys on demand. When the hardware pool runs dry, binding
//! steals the least-recently-used tenant's key: the victim's pages are
//! re-tagged onto a dedicated no-access **park key** (a `pkey_mprotect`
//! storm that bumps the shared space's TLB epoch, so every thread's
//! software TLB refetches), and only then is the key handed to the new
//! binding. A parked tenant's pages are inaccessible under *every*
//! tenant PKRU — stale PKRU or TLB state can therefore never grant
//! cross-tenant access, because the rights a stale PKRU still carries
//! are for a key the victim's pages no longer wear.
//!
//! Eviction safety: a binding is returned as a [`BindGuard`] pin. While
//! any pin for a virtual key is live — a worker is inside a gate region
//! running under that tenant's rights — [`VirtualPkeyPool::evict`]
//! refuses to steal its hardware key, because re-tagging pages under an
//! executing compartment would yield spurious faults (or worse, let the
//! next binder's rights apply to the victim's still-running code).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use pkru_mpk::{Pkey, PkeyPoolError, SharedPkeyPool};
use pkru_vmem::{page_align_up, Prot, SharedSpace, VirtAddr, PAGE_SIZE};

/// A tenant-held protection key: an index into the virtual key space,
/// unbounded where hardware keys stop at 15.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtualPkey(u32);

impl VirtualPkey {
    /// The key's index in the virtual key space.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for VirtualPkey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vkey{}", self.0)
    }
}

/// Errors raised by the virtual key pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VirtualPkeyError {
    /// No hardware key is free and no binding exists to evict. Setup-time
    /// version: the underlying `pkey_alloc` pool was already drained
    /// (surfaced typed, never as a panic — see `ServeError::KeysExhausted`
    /// on the serve path).
    Exhausted,
    /// Every currently bound virtual key is pinned by an open gate region;
    /// the caller should retry once some compartment exits.
    AllPinned,
    /// An explicit evict was refused because the binding is pinned by an
    /// open gate region.
    Pinned(VirtualPkey),
    /// The virtual key was never registered with this pool.
    Unknown(VirtualPkey),
    /// A `pkey_mprotect` re-tag storm failed mid-flight.
    Retag(String),
}

impl std::fmt::Display for VirtualPkeyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VirtualPkeyError::Exhausted => {
                write!(f, "hardware protection keys exhausted (pkey_alloc)")
            }
            VirtualPkeyError::AllPinned => {
                write!(f, "every bound virtual key is pinned by an open gate region")
            }
            VirtualPkeyError::Pinned(v) => {
                write!(f, "{v} is pinned by an open gate region and cannot be evicted")
            }
            VirtualPkeyError::Unknown(v) => write!(f, "{v} is not registered with this pool"),
            VirtualPkeyError::Retag(m) => write!(f, "pkey_mprotect re-tag failed: {m}"),
        }
    }
}

impl std::error::Error for VirtualPkeyError {}

impl From<PkeyPoolError> for VirtualPkeyError {
    fn from(_: PkeyPoolError) -> VirtualPkeyError {
        VirtualPkeyError::Exhausted
    }
}

/// Lifetime counters for the pool (mirrored into `BENCH_tenant.json`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VkeyPoolStats {
    /// Total bind calls.
    pub binds: u64,
    /// Binds that found the virtual key already wearing a hardware key.
    pub hits: u64,
    /// Binds that had to allocate or steal a hardware key.
    pub misses: u64,
    /// Bindings whose hardware key was stolen (LRU) or explicitly evicted.
    pub evictions: u64,
    /// Pages re-tagged by `pkey_mprotect` storms (parking + rebinding).
    pub pages_retagged: u64,
}

impl VkeyPoolStats {
    /// Bind hit rate over the pool's lifetime.
    pub fn hit_rate(&self) -> f64 {
        if self.binds == 0 {
            0.0
        } else {
            self.hits as f64 / self.binds as f64
        }
    }
}

/// A page range owned by a virtual key, re-tagged wholesale on every
/// bind/evict transition.
#[derive(Clone, Copy, Debug)]
struct Region {
    addr: VirtAddr,
    len: u64,
    prot: Prot,
}

/// Per-virtual-key state.
struct VkeyState {
    hw: Option<Pkey>,
    regions: Vec<Region>,
    /// Logical timestamp of the last bind (LRU victim = smallest).
    last_bound: u64,
    /// Live [`BindGuard`]s — open gate regions running under this key.
    pins: Arc<AtomicUsize>,
}

struct Inner {
    states: Vec<VkeyState>,
    tick: u64,
    stats: VkeyPoolStats,
}

/// Multiplexes an unbounded virtual key space onto the ≤15 allocatable
/// hardware keys of one [`SharedPkeyPool`].
///
/// One hardware key is claimed up front as the **park key**: evicted
/// virtual keys' pages are re-tagged onto it, and no tenant PKRU ever
/// grants it, so parked pages are dark to every compartment but `T`.
pub struct VirtualPkeyPool {
    space: SharedSpace,
    hw: SharedPkeyPool,
    park: Pkey,
    inner: Mutex<Inner>,
}

/// A live binding: proof that `vkey` wears hardware key `hw` and a pin
/// that blocks eviction until dropped. Hold it across the gate region
/// that runs under the tenant's rights; drop it when the compartment
/// exits.
#[derive(Debug)]
pub struct BindGuard {
    vkey: VirtualPkey,
    hw: Pkey,
    pins: Arc<AtomicUsize>,
}

impl BindGuard {
    /// The virtual key this binding pins.
    pub fn vkey(&self) -> VirtualPkey {
        self.vkey
    }

    /// The hardware key the virtual key currently wears.
    pub fn hw_key(&self) -> Pkey {
        self.hw
    }
}

impl Drop for BindGuard {
    fn drop(&mut self) {
        self.pins.fetch_sub(1, Ordering::Release);
    }
}

impl VirtualPkeyPool {
    /// Creates a pool over `space`'s page tables and the process key
    /// pool, claiming one hardware key as the park key.
    ///
    /// Fails typed with [`VirtualPkeyError::Exhausted`] when `pkey_alloc`
    /// has nothing left even for the park key.
    pub fn new(
        space: SharedSpace,
        hw: SharedPkeyPool,
    ) -> Result<VirtualPkeyPool, VirtualPkeyError> {
        let park = hw.alloc()?;
        Ok(VirtualPkeyPool {
            space,
            hw,
            park,
            inner: Mutex::new(Inner {
                states: Vec::new(),
                tick: 0,
                stats: VkeyPoolStats::default(),
            }),
        })
    }

    /// The no-access key parked pages wear. No tenant PKRU grants it.
    pub fn park_key(&self) -> Pkey {
        self.park
    }

    /// Registers a fresh virtual key, unbound and owning no pages yet.
    pub fn register(&self) -> VirtualPkey {
        let mut inner = self.inner.lock().expect("vkey pool lock");
        let vkey = VirtualPkey(inner.states.len() as u32);
        inner.states.push(VkeyState {
            hw: None,
            regions: Vec::new(),
            last_bound: 0,
            pins: Arc::new(AtomicUsize::new(0)),
        });
        vkey
    }

    /// Adds `[addr, addr + len)` to the pages `vkey` owns and tags it
    /// with the key's current binding (the park key while unbound). The
    /// range must already be mapped.
    pub fn add_region(
        &self,
        vkey: VirtualPkey,
        addr: VirtAddr,
        len: u64,
        prot: Prot,
    ) -> Result<(), VirtualPkeyError> {
        let mut inner = self.inner.lock().expect("vkey pool lock");
        let state = inner.states.get_mut(vkey.0 as usize).ok_or(VirtualPkeyError::Unknown(vkey))?;
        let key = state.hw.unwrap_or(self.park);
        state.regions.push(Region { addr, len, prot });
        let pages = retag(&self.space, &[Region { addr, len, prot }], key)?;
        inner.stats.pages_retagged += pages;
        Ok(())
    }

    /// Binds `vkey` to a hardware key, returning a pinned [`BindGuard`].
    ///
    /// Hit: the key is already bound — bump its LRU stamp and pin it.
    /// Miss: allocate a hardware key, or steal the LRU unpinned binding's
    /// key — park the victim's pages (a `pkey_mprotect` storm; the epoch
    /// bump flushes every thread's software TLB), then re-tag this key's
    /// pages onto the stolen key. If every bound key is pinned by an open
    /// gate region, refuses with [`VirtualPkeyError::AllPinned`] rather
    /// than re-tagging under a running compartment; retry after a yield.
    pub fn bind(&self, vkey: VirtualPkey) -> Result<BindGuard, VirtualPkeyError> {
        let mut inner = self.inner.lock().expect("vkey pool lock");
        let inner = &mut *inner;
        if vkey.0 as usize >= inner.states.len() {
            return Err(VirtualPkeyError::Unknown(vkey));
        }
        inner.tick += 1;
        inner.stats.binds += 1;
        let tick = inner.tick;

        if let Some(hw) = inner.states[vkey.0 as usize].hw {
            inner.stats.hits += 1;
            let state = &mut inner.states[vkey.0 as usize];
            state.last_bound = tick;
            state.pins.fetch_add(1, Ordering::Acquire);
            return Ok(BindGuard { vkey, hw, pins: Arc::clone(&state.pins) });
        }

        inner.stats.misses += 1;
        let hw = match self.hw.alloc() {
            Ok(key) => key,
            Err(PkeyPoolError::Exhausted) => self.steal_lru(inner, vkey)?,
            Err(e) => return Err(e.into()),
        };

        let state = &mut inner.states[vkey.0 as usize];
        let pages = retag(&self.space, &state.regions, hw)?;
        state.hw = Some(hw);
        state.last_bound = tick;
        state.pins.fetch_add(1, Ordering::Acquire);
        let guard = BindGuard { vkey, hw, pins: Arc::clone(&state.pins) };
        inner.stats.pages_retagged += pages;
        Ok(guard)
    }

    /// Steals the least-recently-bound unpinned binding's hardware key,
    /// parking the victim's pages first. The key is handed over directly
    /// (never released to the shared pool mid-steal), so a concurrent
    /// `pkey_alloc` elsewhere in the process can never race it away.
    fn steal_lru(&self, inner: &mut Inner, binder: VirtualPkey) -> Result<Pkey, VirtualPkeyError> {
        let mut victim: Option<usize> = None;
        let mut any_bound = false;
        for (i, state) in inner.states.iter().enumerate() {
            if i == binder.0 as usize || state.hw.is_none() {
                continue;
            }
            any_bound = true;
            // The pin check under the pool lock is the eviction-safety
            // fix: a pinned binding has a gate region in flight, and its
            // pages must keep their key until that compartment exits.
            if state.pins.load(Ordering::Acquire) != 0 {
                continue;
            }
            if victim.is_none_or(|v| state.last_bound < inner.states[v].last_bound) {
                victim = Some(i);
            }
        }
        let Some(v) = victim else {
            return Err(if any_bound {
                VirtualPkeyError::AllPinned
            } else {
                VirtualPkeyError::Exhausted
            });
        };
        let state = &mut inner.states[v];
        let hw = state.hw.take().expect("victim was bound");
        let pages = retag(&self.space, &state.regions, self.park)?;
        inner.stats.evictions += 1;
        inner.stats.pages_retagged += pages;
        Ok(hw)
    }

    /// Explicitly evicts `vkey`: parks its pages and releases its
    /// hardware key back to the shared pool (`pkey_free`), so the next
    /// bind — of any virtual key — can reuse it.
    ///
    /// Idempotent: evicting an unbound key returns `Ok(false)`. Refuses
    /// with [`VirtualPkeyError::Pinned`] while a [`BindGuard`] is live.
    pub fn evict(&self, vkey: VirtualPkey) -> Result<bool, VirtualPkeyError> {
        let mut inner = self.inner.lock().expect("vkey pool lock");
        let inner = &mut *inner;
        let state = inner.states.get_mut(vkey.0 as usize).ok_or(VirtualPkeyError::Unknown(vkey))?;
        let Some(hw) = state.hw else {
            return Ok(false);
        };
        if state.pins.load(Ordering::Acquire) != 0 {
            return Err(VirtualPkeyError::Pinned(vkey));
        }
        let pages = retag(&self.space, &state.regions, self.park)?;
        state.hw = None;
        inner.stats.evictions += 1;
        inner.stats.pages_retagged += pages;
        // Freeing cannot fail: the key was handed out by this pool and
        // nobody else frees it while we hold the binding.
        self.hw.free(hw).expect("evicted key was allocated");
        Ok(true)
    }

    /// The hardware key `vkey` currently wears, if bound.
    pub fn hw_key(&self, vkey: VirtualPkey) -> Option<Pkey> {
        let inner = self.inner.lock().expect("vkey pool lock");
        inner.states.get(vkey.0 as usize).and_then(|s| s.hw)
    }

    /// Whether `vkey` is currently bound to a hardware key.
    pub fn is_bound(&self, vkey: VirtualPkey) -> bool {
        self.hw_key(vkey).is_some()
    }

    /// Number of virtual keys currently wearing a hardware key.
    pub fn bound_count(&self) -> usize {
        let inner = self.inner.lock().expect("vkey pool lock");
        inner.states.iter().filter(|s| s.hw.is_some()).count()
    }

    /// Number of virtual keys registered.
    pub fn registered(&self) -> usize {
        self.inner.lock().expect("vkey pool lock").states.len()
    }

    /// Snapshot of the pool's lifetime counters.
    pub fn stats(&self) -> VkeyPoolStats {
        self.inner.lock().expect("vkey pool lock").stats
    }

    /// Hardware keys currently allocated process-wide (including key 0,
    /// the trusted key, and the park key) — can never exceed 16.
    pub fn allocated_count(&self) -> u32 {
        self.hw.allocated_count()
    }
}

impl std::fmt::Debug for VirtualPkeyPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualPkeyPool")
            .field("park", &self.park)
            .field("registered", &self.registered())
            .field("bound", &self.bound_count())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Re-tags every region onto `key`, returning the pages touched. Each
/// `pkey_mprotect` bumps the space's epoch — the storm is what invalidates
/// every thread's software TLB.
fn retag(space: &SharedSpace, regions: &[Region], key: Pkey) -> Result<u64, VirtualPkeyError> {
    let mut pages = 0;
    for r in regions {
        space
            .pkey_mprotect(r.addr, r.len, r.prot, key)
            .map_err(|e| VirtualPkeyError::Retag(format!("{:#x}+{:#x}: {e}", r.addr, r.len)))?;
        pages += page_align_up(r.len) / PAGE_SIZE;
    }
    Ok(pages)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_with(space: &SharedSpace) -> (VirtualPkeyPool, SharedPkeyPool) {
        let hw = SharedPkeyPool::new();
        (VirtualPkeyPool::new(space.clone(), hw.clone()).unwrap(), hw)
    }

    fn mapped_vkey(pool: &VirtualPkeyPool, space: &SharedSpace, at: VirtAddr) -> VirtualPkey {
        let vkey = pool.register();
        space.mmap_at(at, PAGE_SIZE, Prot::READ_WRITE).unwrap();
        pool.add_region(vkey, at, PAGE_SIZE, Prot::READ_WRITE).unwrap();
        vkey
    }

    #[test]
    fn regions_park_until_bound_then_wear_the_binding() {
        let space = SharedSpace::new();
        let (pool, _) = pool_with(&space);
        let vkey = mapped_vkey(&pool, &space, 0x100_0000);
        assert_eq!(space.page_pkey(0x100_0000), Some(pool.park_key()));
        let guard = pool.bind(vkey).unwrap();
        assert_eq!(space.page_pkey(0x100_0000), Some(guard.hw_key()));
        assert_ne!(guard.hw_key(), pool.park_key());
    }

    #[test]
    fn binding_past_the_hardware_limit_steals_the_lru_key() {
        let space = SharedSpace::new();
        let (pool, hw) = pool_with(&space);
        // Burn the pool down to 2 free keys so the test stays small.
        let mut held = Vec::new();
        while hw.allocated_count() < 14 {
            held.push(hw.alloc().unwrap());
        }
        let a = mapped_vkey(&pool, &space, 0x100_0000);
        let b = mapped_vkey(&pool, &space, 0x200_0000);
        let c = mapped_vkey(&pool, &space, 0x300_0000);
        let key_a = pool.bind(a).unwrap().hw_key();
        drop(pool.bind(b).unwrap());
        // Rebind b so a becomes the LRU victim.
        drop(pool.bind(b).unwrap());
        let guard_c = pool.bind(c).unwrap();
        // c stole a's key; a is parked.
        assert_eq!(guard_c.hw_key(), key_a);
        assert!(!pool.is_bound(a));
        assert_eq!(space.page_pkey(0x100_0000), Some(pool.park_key()));
        assert_eq!(space.page_pkey(0x300_0000), Some(key_a));
        let stats = pool.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn pinned_bindings_are_never_stolen() {
        let space = SharedSpace::new();
        let (pool, hw) = pool_with(&space);
        let mut held = Vec::new();
        while hw.allocated_count() < 14 {
            held.push(hw.alloc().unwrap());
        }
        let a = mapped_vkey(&pool, &space, 0x100_0000);
        let b = mapped_vkey(&pool, &space, 0x200_0000);
        let c = mapped_vkey(&pool, &space, 0x300_0000);
        // a is the LRU *and* pinned: the steal must skip it and take b.
        let guard_a = pool.bind(a).unwrap();
        let key_b = { pool.bind(b).unwrap().hw_key() };
        let guard_c = pool.bind(c).unwrap();
        assert_eq!(guard_c.hw_key(), key_b);
        assert!(pool.is_bound(a));
        assert_eq!(space.page_pkey(0x100_0000), Some(guard_a.hw_key()));
    }

    #[test]
    fn all_pinned_refuses_instead_of_retagging_under_a_live_compartment() {
        let space = SharedSpace::new();
        let (pool, hw) = pool_with(&space);
        let mut held = Vec::new();
        while hw.allocated_count() < 15 {
            held.push(hw.alloc().unwrap());
        }
        let a = mapped_vkey(&pool, &space, 0x100_0000);
        let b = mapped_vkey(&pool, &space, 0x200_0000);
        let guard_a = pool.bind(a).unwrap();
        assert!(matches!(pool.bind(b), Err(VirtualPkeyError::AllPinned)));
        // Once the gate region closes, the bind goes through.
        drop(guard_a);
        assert!(pool.bind(b).is_ok());
    }

    #[test]
    fn evict_is_refused_while_pinned_and_idempotent_after() {
        let space = SharedSpace::new();
        let (pool, _) = pool_with(&space);
        let a = mapped_vkey(&pool, &space, 0x100_0000);
        let guard = pool.bind(a).unwrap();
        assert_eq!(pool.evict(a), Err(VirtualPkeyError::Pinned(a)));
        drop(guard);
        assert_eq!(pool.evict(a), Ok(true));
        assert_eq!(pool.evict(a), Ok(false), "double evict is idempotent");
        assert_eq!(space.page_pkey(0x100_0000), Some(pool.park_key()));
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn free_then_rebind_reuses_the_same_hardware_key() {
        let space = SharedSpace::new();
        let (pool, _) = pool_with(&space);
        let a = mapped_vkey(&pool, &space, 0x100_0000);
        let first = { pool.bind(a).unwrap().hw_key() };
        pool.evict(a).unwrap();
        let second = { pool.bind(a).unwrap().hw_key() };
        assert_eq!(first, second, "pkey_free followed by pkey_alloc reuses the lowest key");
    }

    #[test]
    fn unknown_vkey_is_typed() {
        let space = SharedSpace::new();
        let (pool, _) = pool_with(&space);
        let ghost = VirtualPkey(99);
        assert!(matches!(pool.bind(ghost), Err(VirtualPkeyError::Unknown(g)) if g == ghost));
        assert_eq!(pool.evict(ghost), Err(VirtualPkeyError::Unknown(ghost)));
    }

    #[test]
    fn exhausted_park_allocation_is_typed() {
        let hw = SharedPkeyPool::new();
        let mut held = Vec::new();
        while hw.allocated_count() < 16 {
            held.push(hw.alloc().unwrap());
        }
        match VirtualPkeyPool::new(SharedSpace::new(), hw) {
            Err(VirtualPkeyError::Exhausted) => {}
            other => panic!("expected typed exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn retag_storm_bumps_the_tlb_epoch() {
        let space = SharedSpace::new();
        let (pool, _) = pool_with(&space);
        let a = mapped_vkey(&pool, &space, 0x100_0000);
        let before = space.epoch();
        let guard = pool.bind(a).unwrap();
        assert!(space.epoch() > before, "bind re-tag must bump the epoch");
        drop(guard);
        let mid = space.epoch();
        pool.evict(a).unwrap();
        assert!(space.epoch() > mid, "evict parking must bump the epoch");
    }
}
