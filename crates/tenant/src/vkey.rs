//! Virtual protection keys multiplexed onto the hardware key space.
//!
//! MPK has 16 keys per process and one of them is the untagged default —
//! a hard cap that a multi-tenant server blows through immediately. The
//! libmpk answer (and ours) is *key virtualization*: tenants hold
//! unbounded **virtual** keys, and a [`VirtualPkeyPool`] binds them to
//! hardware keys on demand. When the hardware pool runs dry, binding
//! steals the least-recently-used tenant's key: the victim's pages are
//! re-tagged onto a dedicated no-access **park key** (a `pkey_mprotect`
//! storm that bumps the shared space's TLB epoch, so every thread's
//! software TLB refetches), and only then is the key handed to the new
//! binding. A parked tenant's pages are inaccessible under *every*
//! tenant PKRU — stale PKRU or TLB state can therefore never grant
//! access to the *victim's* pages, because the rights a stale PKRU still
//! carries are for a key the victim's pages no longer wear.
//!
//! Recycling safety is the harder half: a stale PKRU's rights *do* still
//! name the stolen hardware key, and once that key is rebound they would
//! grant access to the key's **next owner**. Two mechanisms close that
//! hole (see `pkru_mpk::revoke` for the ordering proof):
//!
//! 1. Every binding carries a monotonic **generation**, published through
//!    a shared cell the pool zeroes at the instant of revocation. Leases
//!    ([`BindGuard`]) carry a [`LeaseStamp`]; the call gates validate it
//!    before granting the lease's rights, so a revoked lease is a typed
//!    refusal, never silent stale access.
//! 2. A stolen key is **quarantined** on a deferred-reuse list at a
//!    [`RevocationBarrier`] epoch, and is rebound only once every
//!    registered worker has dropped to base rights since the steal — at
//!    which point no live PKRU register can still grant it.
//!
//! Because revocation (not pinning) is what protects a live lease, a
//! [`BindGuard`] no longer blocks stealing: it records a *lease* that
//! steals merely prefer to avoid, so `bind` under pressure degrades to
//! bounded waiting on the barrier instead of the old hard
//! `AllPinned` refusal. Explicit [`VirtualPkeyPool::evict`] still
//! refuses while a lease is live — deliberately unbinding a tenant that
//! is mid-request remains an error at the management API.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use pkru_mpk::{LeaseStamp, Pkey, PkeyPoolError, RevocationBarrier, SharedPkeyPool};
use pkru_vmem::{page_align_up, Prot, SharedSpace, VirtAddr, PAGE_SIZE};

/// A tenant-held protection key: an index into the virtual key space,
/// unbounded where hardware keys stop at 15.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtualPkey(u32);

impl VirtualPkey {
    /// The key's index in the virtual key space.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for VirtualPkey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vkey{}", self.0)
    }
}

/// How many rounds `bind` waits for a quarantined key to mature behind
/// the revocation barrier before refusing. The first rounds yield; the
/// rest sleep [`BIND_BACKOFF_SLEEP`], bounding the wait to a few
/// milliseconds — gate regions are per-FFI-call and exit far faster.
const BIND_BACKOFF_SPINS: usize = 96;

/// Rounds that merely yield before the backoff starts sleeping.
const BIND_BACKOFF_YIELDS: usize = 32;

/// Per-round sleep once yielding has not freed a key.
const BIND_BACKOFF_SLEEP: Duration = Duration::from_micros(100);

/// Errors raised by the virtual key pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VirtualPkeyError {
    /// No hardware key is free and no binding exists to evict. Setup-time
    /// version: the underlying `pkey_alloc` pool was already drained
    /// (surfaced typed, never as a panic — see `ServeError::KeysExhausted`
    /// on the serve path).
    Exhausted,
    /// The bind backoff budget expired with every candidate key still
    /// quarantined behind the revocation barrier (some worker has sat
    /// inside one gate region for the whole budget). Retryable: the
    /// caller should back off and bind again.
    AllPinned,
    /// An explicit evict was refused because the binding is leased by an
    /// in-flight request.
    Pinned(VirtualPkey),
    /// The virtual key was never registered with this pool.
    Unknown(VirtualPkey),
    /// A `pkey_mprotect` re-tag storm failed mid-flight.
    Retag(String),
}

impl std::fmt::Display for VirtualPkeyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VirtualPkeyError::Exhausted => {
                write!(f, "hardware protection keys exhausted (pkey_alloc)")
            }
            VirtualPkeyError::AllPinned => {
                write!(f, "bind backoff expired: every key is quarantined behind the barrier")
            }
            VirtualPkeyError::Pinned(v) => {
                write!(f, "{v} is leased by an in-flight request and cannot be evicted")
            }
            VirtualPkeyError::Unknown(v) => write!(f, "{v} is not registered with this pool"),
            VirtualPkeyError::Retag(m) => write!(f, "pkey_mprotect re-tag failed: {m}"),
        }
    }
}

impl std::error::Error for VirtualPkeyError {}

impl From<PkeyPoolError> for VirtualPkeyError {
    fn from(_: PkeyPoolError) -> VirtualPkeyError {
        VirtualPkeyError::Exhausted
    }
}

/// Lifetime counters for the pool (mirrored into `BENCH_tenant.json`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VkeyPoolStats {
    /// Total bind calls.
    pub binds: u64,
    /// Binds that found the virtual key already wearing a hardware key.
    pub hits: u64,
    /// Binds that had to allocate or steal a hardware key.
    pub misses: u64,
    /// Bindings whose hardware key was stolen (LRU) or explicitly evicted.
    pub evictions: u64,
    /// Pages re-tagged by `pkey_mprotect` storms (parking + rebinding).
    pub pages_retagged: u64,
    /// Lease generations revoked (every steal and explicit evict).
    pub revocations: u64,
    /// Binds satisfied from the deferred-reuse list after its quarantine
    /// epoch cleared the revocation barrier.
    pub deferred_reuses: u64,
    /// Hardware keys sitting in quarantine right now (gauge, sampled at
    /// [`VirtualPkeyPool::stats`] time).
    pub deferred_keys: u64,
}

impl VkeyPoolStats {
    /// Bind hit rate over the pool's lifetime.
    pub fn hit_rate(&self) -> f64 {
        if self.binds == 0 {
            0.0
        } else {
            self.hits as f64 / self.binds as f64
        }
    }
}

/// A page range owned by a virtual key, re-tagged wholesale on every
/// bind/evict transition.
#[derive(Clone, Copy, Debug)]
struct Region {
    addr: VirtAddr,
    len: u64,
    prot: Prot,
}

/// Per-virtual-key state.
struct VkeyState {
    hw: Option<Pkey>,
    regions: Vec<Region>,
    /// Logical timestamp of the last bind (LRU victim = smallest).
    last_bound: u64,
    /// Live [`BindGuard`]s — in-flight requests running under this key.
    /// A lease no longer blocks stealing (revocation protects it); it
    /// only steers the victim choice and blocks explicit `evict`.
    leases: Arc<AtomicUsize>,
    /// The generation of the current binding (0 while unbound/revoked).
    generation: u64,
    /// The published copy of `generation` that outstanding [`LeaseStamp`]s
    /// validate against; zeroed at the instant of revocation.
    current: Arc<AtomicU64>,
}

/// A stolen hardware key sitting out its quarantine: reusable only once
/// every registered worker has passed `steal_epoch` on the barrier.
struct DeferredKey {
    hw: Pkey,
    steal_epoch: u64,
}

struct Inner {
    states: Vec<VkeyState>,
    tick: u64,
    stats: VkeyPoolStats,
    /// Monotonic source for binding generations (never reused, never 0).
    next_generation: u64,
    /// The deferred-reuse quarantine list. Epochs ascend with the index,
    /// so the matured entries always form a prefix.
    deferred: Vec<DeferredKey>,
}

/// Multiplexes an unbounded virtual key space onto the ≤15 allocatable
/// hardware keys of one [`SharedPkeyPool`].
///
/// One hardware key is claimed up front as the **park key**: evicted
/// virtual keys' pages are re-tagged onto it, and no tenant PKRU ever
/// grants it, so parked pages are dark to every compartment but `T`.
pub struct VirtualPkeyPool {
    space: SharedSpace,
    hw: SharedPkeyPool,
    park: Pkey,
    barrier: Arc<RevocationBarrier>,
    inner: Mutex<Inner>,
}

/// A live lease: proof that `vkey` wore hardware key `hw` at
/// `generation`. The pool may still steal the key underneath the lease —
/// [`BindGuard::is_current`] (and the [`LeaseStamp`] the gates validate)
/// is how the holder finds out, re-binds, and never touches memory
/// through revoked rights.
#[derive(Debug)]
pub struct BindGuard {
    vkey: VirtualPkey,
    hw: Pkey,
    generation: u64,
    current: Arc<AtomicU64>,
    leases: Arc<AtomicUsize>,
}

impl BindGuard {
    /// The virtual key this lease names.
    pub fn vkey(&self) -> VirtualPkey {
        self.vkey
    }

    /// The hardware key the virtual key wore when the lease was granted.
    /// Only meaningful while [`BindGuard::is_current`] holds.
    pub fn hw_key(&self) -> Pkey {
        self.hw
    }

    /// The binding generation this lease was granted at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether the lease still names the live binding — `false` once the
    /// hardware key has been stolen or evicted.
    pub fn is_current(&self) -> bool {
        self.current.load(Ordering::SeqCst) == self.generation
    }

    /// The liveness stamp the call gates validate before granting this
    /// lease's rights.
    pub fn stamp(&self) -> LeaseStamp {
        LeaseStamp::new(self.generation, Arc::clone(&self.current))
    }
}

impl Drop for BindGuard {
    fn drop(&mut self) {
        self.leases.fetch_sub(1, Ordering::Release);
    }
}

impl VirtualPkeyPool {
    /// Creates a pool over `space`'s page tables and the process key
    /// pool, claiming one hardware key as the park key.
    ///
    /// Fails typed with [`VirtualPkeyError::Exhausted`] when `pkey_alloc`
    /// has nothing left even for the park key.
    pub fn new(
        space: SharedSpace,
        hw: SharedPkeyPool,
    ) -> Result<VirtualPkeyPool, VirtualPkeyError> {
        let park = hw.alloc()?;
        Ok(VirtualPkeyPool {
            space,
            hw,
            park,
            barrier: Arc::new(RevocationBarrier::new()),
            inner: Mutex::new(Inner {
                states: Vec::new(),
                tick: 0,
                stats: VkeyPoolStats::default(),
                next_generation: 0,
                deferred: Vec::new(),
            }),
        })
    }

    /// The no-access key parked pages wear. No tenant PKRU grants it.
    pub fn park_key(&self) -> Pkey {
        self.park
    }

    /// The revocation barrier workers register with. Gate runtimes
    /// publish region entry/exit through a [`pkru_mpk::WorkerEpoch`]
    /// handle; the pool reuses a quarantined key only once every
    /// registered worker has passed its steal epoch.
    pub fn barrier(&self) -> &Arc<RevocationBarrier> {
        &self.barrier
    }

    /// Registers a fresh virtual key, unbound and owning no pages yet.
    pub fn register(&self) -> VirtualPkey {
        let mut inner = self.inner.lock().expect("vkey pool lock");
        let vkey = VirtualPkey(inner.states.len() as u32);
        inner.states.push(VkeyState {
            hw: None,
            regions: Vec::new(),
            last_bound: 0,
            leases: Arc::new(AtomicUsize::new(0)),
            generation: 0,
            current: Arc::new(AtomicU64::new(0)),
        });
        vkey
    }

    /// Adds `[addr, addr + len)` to the pages `vkey` owns and tags it
    /// with the key's current binding (the park key while unbound). The
    /// range must already be mapped.
    pub fn add_region(
        &self,
        vkey: VirtualPkey,
        addr: VirtAddr,
        len: u64,
        prot: Prot,
    ) -> Result<(), VirtualPkeyError> {
        let mut inner = self.inner.lock().expect("vkey pool lock");
        let state = inner.states.get_mut(vkey.0 as usize).ok_or(VirtualPkeyError::Unknown(vkey))?;
        let key = state.hw.unwrap_or(self.park);
        state.regions.push(Region { addr, len, prot });
        let pages = retag(&self.space, &[Region { addr, len, prot }], key)?;
        inner.stats.pages_retagged += pages;
        Ok(())
    }

    /// Binds `vkey` to a hardware key, returning a leased [`BindGuard`].
    ///
    /// Hit: the key is already bound — bump its LRU stamp and lease it.
    /// Miss, in preference order: (1) a quarantined key whose steal epoch
    /// has cleared the revocation barrier, (2) a fresh `pkey_alloc`, (3)
    /// steal the LRU binding — revoke its generation, park the victim's
    /// pages (a `pkey_mprotect` storm; the epoch bump flushes every
    /// thread's software TLB) and quarantine the key at a fresh barrier
    /// epoch, then wait (bounded backoff) for it to mature. Unleased
    /// victims are stolen first, but a leased LRU binding *is* stolen
    /// when nothing better exists — revocation, not pinning, is what
    /// keeps the lease holder safe. Only when the backoff budget expires
    /// with every key still quarantined does bind refuse, retryably, with
    /// [`VirtualPkeyError::AllPinned`].
    pub fn bind(&self, vkey: VirtualPkey) -> Result<BindGuard, VirtualPkeyError> {
        let mut stolen = false;
        for attempt in 0..BIND_BACKOFF_SPINS {
            {
                let mut inner = self.inner.lock().expect("vkey pool lock");
                let inner = &mut *inner;
                if vkey.0 as usize >= inner.states.len() {
                    return Err(VirtualPkeyError::Unknown(vkey));
                }
                inner.tick += 1;
                let tick = inner.tick;
                if attempt == 0 {
                    inner.stats.binds += 1;
                }

                if let Some(hw) = inner.states[vkey.0 as usize].hw {
                    if attempt == 0 {
                        inner.stats.hits += 1;
                    }
                    let state = &mut inner.states[vkey.0 as usize];
                    state.last_bound = tick;
                    state.leases.fetch_add(1, Ordering::Acquire);
                    return Ok(BindGuard {
                        vkey,
                        hw,
                        generation: state.generation,
                        current: Arc::clone(&state.current),
                        leases: Arc::clone(&state.leases),
                    });
                }
                if attempt == 0 {
                    inner.stats.misses += 1;
                }

                // (1) A matured quarantined key — taken before a fresh
                // alloc so an evict/rebind round-trip reuses the same
                // hardware key (LIFO over the matured prefix).
                if let Some(hw) = self.take_matured(inner) {
                    inner.stats.deferred_reuses += 1;
                    return self.finish_bind(inner, vkey, hw, tick);
                }
                // (2) A fresh hardware key.
                match self.hw.alloc() {
                    Ok(hw) => return self.finish_bind(inner, vkey, hw, tick),
                    Err(PkeyPoolError::Exhausted) => {}
                    Err(e) => return Err(e.into()),
                }
                // (3) Steal into quarantine — at most once per bind call
                // while the quarantine is non-empty, so a slow barrier
                // makes this bind *wait*, not strip every other tenant.
                if !stolen || inner.deferred.is_empty() {
                    match self.steal_into_quarantine(inner, vkey) {
                        Ok(()) => stolen = true,
                        // Nothing bound to steal, but keys are sitting in
                        // quarantine: wait for one to mature.
                        Err(VirtualPkeyError::Exhausted) if !inner.deferred.is_empty() => {}
                        Err(e) => return Err(e),
                    }
                    if let Some(hw) = self.take_matured(inner) {
                        inner.stats.deferred_reuses += 1;
                        return self.finish_bind(inner, vkey, hw, tick);
                    }
                }
            }
            // Lock released: give the workers blocking the barrier a
            // chance to reach their restore point.
            if attempt < BIND_BACKOFF_YIELDS {
                std::thread::yield_now();
            } else {
                std::thread::sleep(BIND_BACKOFF_SLEEP);
            }
        }
        Err(VirtualPkeyError::AllPinned)
    }

    /// Completes a miss-path bind of `vkey` onto `hw`: mints the next
    /// generation, re-tags the key's pages, and publishes the binding.
    fn finish_bind(
        &self,
        inner: &mut Inner,
        vkey: VirtualPkey,
        hw: Pkey,
        tick: u64,
    ) -> Result<BindGuard, VirtualPkeyError> {
        inner.next_generation += 1;
        let generation = inner.next_generation;
        let state = &mut inner.states[vkey.0 as usize];
        let pages = retag(&self.space, &state.regions, hw)?;
        state.hw = Some(hw);
        state.last_bound = tick;
        state.generation = generation;
        state.current.store(generation, Ordering::SeqCst);
        state.leases.fetch_add(1, Ordering::Acquire);
        let guard = BindGuard {
            vkey,
            hw,
            generation,
            current: Arc::clone(&state.current),
            leases: Arc::clone(&state.leases),
        };
        inner.stats.pages_retagged += pages;
        Ok(guard)
    }

    /// Takes the newest quarantined key whose steal epoch every
    /// registered worker has passed, if any. Epochs ascend with the list
    /// index, so the matured entries form a prefix and `rposition` finds
    /// its end — LIFO reuse keeps an evict/rebind round-trip on the same
    /// hardware key.
    fn take_matured(&self, inner: &mut Inner) -> Option<Pkey> {
        let i = inner.deferred.iter().rposition(|d| self.barrier.all_passed(d.steal_epoch))?;
        Some(inner.deferred.remove(i).hw)
    }

    /// Steals the least-recently-bound binding's hardware key — unleased
    /// victims first — revoking its generation, parking its pages, and
    /// quarantining the key at a fresh barrier epoch. The key is *not*
    /// released to the shared `pkey_alloc` pool: it stays owned by the
    /// quarantine list until it matures, so nothing else in the process
    /// can race it into reuse before the barrier clears.
    fn steal_into_quarantine(
        &self,
        inner: &mut Inner,
        binder: VirtualPkey,
    ) -> Result<(), VirtualPkeyError> {
        let mut victim: Option<usize> = None;
        for (i, state) in inner.states.iter().enumerate() {
            if i == binder.0 as usize || state.hw.is_none() {
                continue;
            }
            let leased = state.leases.load(Ordering::Acquire) != 0;
            let better = match victim {
                None => true,
                Some(v) => {
                    let best = &inner.states[v];
                    let best_leased = best.leases.load(Ordering::Acquire) != 0;
                    (leased, state.last_bound) < (best_leased, best.last_bound)
                }
            };
            if better {
                victim = Some(i);
            }
        }
        let Some(v) = victim else {
            return Err(VirtualPkeyError::Exhausted);
        };
        let state = &mut inner.states[v];
        // Revoke *before* the quarantine epoch is minted: a gate entry
        // that misses this store must have published its region before
        // `begin_revocation`, and the barrier then holds the key until
        // that region's restore point (see `pkru_mpk::revoke`).
        state.current.store(0, Ordering::SeqCst);
        state.generation = 0;
        let hw = state.hw.take().expect("victim was bound");
        let pages = retag(&self.space, &state.regions, self.park)?;
        let steal_epoch = self.barrier.begin_revocation();
        inner.deferred.push(DeferredKey { hw, steal_epoch });
        inner.stats.evictions += 1;
        inner.stats.revocations += 1;
        inner.stats.pages_retagged += pages;
        Ok(())
    }

    /// Explicitly evicts `vkey`: revokes its lease generation, parks its
    /// pages, and quarantines its hardware key on the deferred-reuse list
    /// — the next bind (of any virtual key) reuses it once its steal
    /// epoch clears the revocation barrier.
    ///
    /// Idempotent: evicting an unbound key returns `Ok(false)`. Refuses
    /// with [`VirtualPkeyError::Pinned`] while a [`BindGuard`] lease is
    /// live — deliberate management-path eviction of a tenant that is
    /// mid-request stays an error even though steals no longer wait.
    pub fn evict(&self, vkey: VirtualPkey) -> Result<bool, VirtualPkeyError> {
        let mut inner = self.inner.lock().expect("vkey pool lock");
        let inner = &mut *inner;
        let state = inner.states.get_mut(vkey.0 as usize).ok_or(VirtualPkeyError::Unknown(vkey))?;
        let Some(hw) = state.hw else {
            return Ok(false);
        };
        if state.leases.load(Ordering::Acquire) != 0 {
            return Err(VirtualPkeyError::Pinned(vkey));
        }
        state.current.store(0, Ordering::SeqCst);
        state.generation = 0;
        state.hw = None;
        let regions = state.regions.clone();
        let pages = retag(&self.space, &regions, self.park)?;
        let steal_epoch = self.barrier.begin_revocation();
        inner.deferred.push(DeferredKey { hw, steal_epoch });
        inner.stats.evictions += 1;
        inner.stats.revocations += 1;
        inner.stats.pages_retagged += pages;
        Ok(true)
    }

    /// The hardware key `vkey` currently wears, if bound.
    pub fn hw_key(&self, vkey: VirtualPkey) -> Option<Pkey> {
        let inner = self.inner.lock().expect("vkey pool lock");
        inner.states.get(vkey.0 as usize).and_then(|s| s.hw)
    }

    /// Whether `vkey` is currently bound to a hardware key.
    pub fn is_bound(&self, vkey: VirtualPkey) -> bool {
        self.hw_key(vkey).is_some()
    }

    /// Number of virtual keys currently wearing a hardware key.
    pub fn bound_count(&self) -> usize {
        let inner = self.inner.lock().expect("vkey pool lock");
        inner.states.iter().filter(|s| s.hw.is_some()).count()
    }

    /// Number of hardware keys currently quarantined on the
    /// deferred-reuse list.
    pub fn deferred_count(&self) -> usize {
        self.inner.lock().expect("vkey pool lock").deferred.len()
    }

    /// Number of virtual keys registered.
    pub fn registered(&self) -> usize {
        self.inner.lock().expect("vkey pool lock").states.len()
    }

    /// Snapshot of the pool's lifetime counters (plus the live
    /// `deferred_keys` gauge).
    pub fn stats(&self) -> VkeyPoolStats {
        let inner = self.inner.lock().expect("vkey pool lock");
        let mut stats = inner.stats;
        stats.deferred_keys = inner.deferred.len() as u64;
        stats
    }

    /// Hardware keys currently allocated process-wide (including key 0,
    /// the trusted key, the park key, and quarantined keys — which stay
    /// allocated while deferred) — can never exceed 16.
    pub fn allocated_count(&self) -> u32 {
        self.hw.allocated_count()
    }
}

impl std::fmt::Debug for VirtualPkeyPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualPkeyPool")
            .field("park", &self.park)
            .field("registered", &self.registered())
            .field("bound", &self.bound_count())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Re-tags every region onto `key`, returning the pages touched. Each
/// `pkey_mprotect` bumps the space's epoch — the storm is what invalidates
/// every thread's software TLB.
fn retag(space: &SharedSpace, regions: &[Region], key: Pkey) -> Result<u64, VirtualPkeyError> {
    let mut pages = 0;
    for r in regions {
        space
            .pkey_mprotect(r.addr, r.len, r.prot, key)
            .map_err(|e| VirtualPkeyError::Retag(format!("{:#x}+{:#x}: {e}", r.addr, r.len)))?;
        pages += page_align_up(r.len) / PAGE_SIZE;
    }
    Ok(pages)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_with(space: &SharedSpace) -> (VirtualPkeyPool, SharedPkeyPool) {
        let hw = SharedPkeyPool::new();
        (VirtualPkeyPool::new(space.clone(), hw.clone()).unwrap(), hw)
    }

    fn mapped_vkey(pool: &VirtualPkeyPool, space: &SharedSpace, at: VirtAddr) -> VirtualPkey {
        let vkey = pool.register();
        space.mmap_at(at, PAGE_SIZE, Prot::READ_WRITE).unwrap();
        pool.add_region(vkey, at, PAGE_SIZE, Prot::READ_WRITE).unwrap();
        vkey
    }

    #[test]
    fn regions_park_until_bound_then_wear_the_binding() {
        let space = SharedSpace::new();
        let (pool, _) = pool_with(&space);
        let vkey = mapped_vkey(&pool, &space, 0x100_0000);
        assert_eq!(space.page_pkey(0x100_0000), Some(pool.park_key()));
        let guard = pool.bind(vkey).unwrap();
        assert_eq!(space.page_pkey(0x100_0000), Some(guard.hw_key()));
        assert_ne!(guard.hw_key(), pool.park_key());
    }

    #[test]
    fn binding_past_the_hardware_limit_steals_the_lru_key() {
        let space = SharedSpace::new();
        let (pool, hw) = pool_with(&space);
        // Burn the pool down to 2 free keys so the test stays small.
        let mut held = Vec::new();
        while hw.allocated_count() < 14 {
            held.push(hw.alloc().unwrap());
        }
        let a = mapped_vkey(&pool, &space, 0x100_0000);
        let b = mapped_vkey(&pool, &space, 0x200_0000);
        let c = mapped_vkey(&pool, &space, 0x300_0000);
        let key_a = pool.bind(a).unwrap().hw_key();
        drop(pool.bind(b).unwrap());
        // Rebind b so a becomes the LRU victim.
        drop(pool.bind(b).unwrap());
        let guard_c = pool.bind(c).unwrap();
        // c stole a's key (revoked, quarantined, matured — no workers are
        // registered, so the barrier passes immediately); a is parked.
        assert_eq!(guard_c.hw_key(), key_a);
        assert!(!pool.is_bound(a));
        assert_eq!(space.page_pkey(0x100_0000), Some(pool.park_key()));
        assert_eq!(space.page_pkey(0x300_0000), Some(key_a));
        let stats = pool.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.revocations, 1);
        assert_eq!(stats.deferred_reuses, 1);
        assert_eq!(stats.deferred_keys, 0, "the matured key went straight to c");
    }

    #[test]
    fn leased_bindings_are_stolen_last() {
        let space = SharedSpace::new();
        let (pool, hw) = pool_with(&space);
        let mut held = Vec::new();
        while hw.allocated_count() < 14 {
            held.push(hw.alloc().unwrap());
        }
        let a = mapped_vkey(&pool, &space, 0x100_0000);
        let b = mapped_vkey(&pool, &space, 0x200_0000);
        let c = mapped_vkey(&pool, &space, 0x300_0000);
        // a is the LRU *and* leased: the steal must prefer unleased b.
        let guard_a = pool.bind(a).unwrap();
        let key_b = { pool.bind(b).unwrap().hw_key() };
        let guard_c = pool.bind(c).unwrap();
        assert_eq!(guard_c.hw_key(), key_b);
        assert!(pool.is_bound(a));
        assert!(guard_a.is_current(), "an unstolen lease stays live");
        assert_eq!(space.page_pkey(0x100_0000), Some(guard_a.hw_key()));
    }

    #[test]
    fn stealing_a_leased_binding_revokes_the_lease() {
        let space = SharedSpace::new();
        let (pool, hw) = pool_with(&space);
        let mut held = Vec::new();
        while hw.allocated_count() < 15 {
            held.push(hw.alloc().unwrap());
        }
        let a = mapped_vkey(&pool, &space, 0x100_0000);
        let b = mapped_vkey(&pool, &space, 0x200_0000);
        // a holds the only key and is leased. The old pool refused here
        // with `AllPinned`; now the steal proceeds — the lease is revoked
        // and the holder finds out through its stamp, never through
        // memory it can still touch.
        let guard_a = pool.bind(a).unwrap();
        assert!(guard_a.is_current());
        let guard_b = pool.bind(b).unwrap();
        assert_eq!(guard_b.hw_key(), guard_a.hw_key(), "b recycled a's key");
        assert!(!guard_a.is_current(), "the steal revoked a's lease");
        assert!(guard_b.is_current());
        assert!(!pool.is_bound(a));
        assert_eq!(space.page_pkey(0x100_0000), Some(pool.park_key()));
        assert_eq!(pool.stats().revocations, 1);
    }

    #[test]
    fn quarantined_keys_wait_for_the_revocation_barrier() {
        let space = SharedSpace::new();
        let (pool, hw) = pool_with(&space);
        let mut held = Vec::new();
        while hw.allocated_count() < 15 {
            held.push(hw.alloc().unwrap());
        }
        let a = mapped_vkey(&pool, &space, 0x100_0000);
        let b = mapped_vkey(&pool, &space, 0x200_0000);
        let key_a = { pool.bind(a).unwrap().hw_key() };
        // A worker sits inside a gate region entered *before* the steal:
        // its PKRU may still carry rights to a's key, so the quarantine
        // must hold the key for the whole bind backoff.
        let worker = pool.barrier().register();
        worker.enter();
        assert!(matches!(pool.bind(b), Err(VirtualPkeyError::AllPinned)));
        assert_eq!(pool.deferred_count(), 1, "the stolen key waits in quarantine");
        // The worker reaches its restore point: the epoch clears and the
        // very same key is granted to b.
        worker.park();
        let guard_b = pool.bind(b).unwrap();
        assert_eq!(guard_b.hw_key(), key_a);
        assert_eq!(pool.deferred_count(), 0);
        assert!(pool.stats().deferred_reuses >= 1);
    }

    #[test]
    fn evict_is_refused_while_leased_and_idempotent_after() {
        let space = SharedSpace::new();
        let (pool, _) = pool_with(&space);
        let a = mapped_vkey(&pool, &space, 0x100_0000);
        let guard = pool.bind(a).unwrap();
        assert_eq!(pool.evict(a), Err(VirtualPkeyError::Pinned(a)));
        assert!(guard.is_current(), "a refused evict revokes nothing");
        drop(guard);
        assert_eq!(pool.evict(a), Ok(true));
        assert_eq!(pool.evict(a), Ok(false), "double evict is idempotent");
        assert_eq!(space.page_pkey(0x100_0000), Some(pool.park_key()));
        let stats = pool.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.revocations, 1);
    }

    #[test]
    fn free_then_rebind_reuses_the_same_hardware_key() {
        let space = SharedSpace::new();
        let (pool, _) = pool_with(&space);
        let a = mapped_vkey(&pool, &space, 0x100_0000);
        let first = { pool.bind(a).unwrap().hw_key() };
        pool.evict(a).unwrap();
        let second = { pool.bind(a).unwrap().hw_key() };
        // The evicted key matured in quarantine (no workers registered)
        // and the rebind takes the deferred list LIFO before allocating
        // fresh — same key both times, as with pkey_free/pkey_alloc.
        assert_eq!(first, second, "evict then rebind reuses the quarantined key");
        assert_eq!(pool.stats().deferred_reuses, 1);
    }

    #[test]
    fn rebinding_mints_a_fresh_generation_and_old_stamps_stay_stale() {
        let space = SharedSpace::new();
        let (pool, _) = pool_with(&space);
        let a = mapped_vkey(&pool, &space, 0x100_0000);
        let (old_generation, old_stamp) = {
            let guard = pool.bind(a).unwrap();
            (guard.generation(), guard.stamp())
        };
        assert!(old_stamp.is_current());
        pool.evict(a).unwrap();
        assert!(!old_stamp.is_current(), "evict revokes the published generation");
        assert_eq!(old_stamp.current_generation(), 0);
        let guard = pool.bind(a).unwrap();
        assert!(guard.generation() > old_generation, "generations are monotonic");
        assert!(guard.is_current());
        assert!(!old_stamp.is_current(), "a rebind never resurrects an old stamp");
    }

    #[test]
    fn unknown_vkey_is_typed() {
        let space = SharedSpace::new();
        let (pool, _) = pool_with(&space);
        let ghost = VirtualPkey(99);
        assert!(matches!(pool.bind(ghost), Err(VirtualPkeyError::Unknown(g)) if g == ghost));
        assert_eq!(pool.evict(ghost), Err(VirtualPkeyError::Unknown(ghost)));
    }

    #[test]
    fn exhausted_park_allocation_is_typed() {
        let hw = SharedPkeyPool::new();
        let mut held = Vec::new();
        while hw.allocated_count() < 16 {
            held.push(hw.alloc().unwrap());
        }
        match VirtualPkeyPool::new(SharedSpace::new(), hw) {
            Err(VirtualPkeyError::Exhausted) => {}
            other => panic!("expected typed exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn retag_storm_bumps_the_tlb_epoch() {
        let space = SharedSpace::new();
        let (pool, _) = pool_with(&space);
        let a = mapped_vkey(&pool, &space, 0x100_0000);
        let before = space.epoch();
        let guard = pool.bind(a).unwrap();
        assert!(space.epoch() > before, "bind re-tag must bump the epoch");
        drop(guard);
        let mid = space.epoch();
        pool.evict(a).unwrap();
        assert!(space.epoch() > mid, "evict parking must bump the epoch");
    }
}
