//! Multi-tenant compartments: virtual protection keys over real MPK.
//!
//! The paper's model is one trusted compartment `T` and one untrusted
//! compartment `U`. Production serving means *many* mutually-distrusting
//! tenants sharing one address space — which collides head-on with the
//! hardware limit of 15 allocatable protection keys. This crate resolves
//! the collision libmpk-style, with two layers:
//!
//! - [`VirtualPkeyPool`] multiplexes an unbounded virtual-key space onto
//!   the hardware keys: binding a virtual key lazily steals the
//!   least-recently-bound hardware key, re-tags the evicted owner's
//!   pages onto a dedicated no-access *park key* (a `pkey_mprotect`
//!   storm that bumps the global TLB epoch, so every per-thread software
//!   TLB resynchronizes), and quarantines the stolen key behind a
//!   [`RevocationBarrier`] before anyone may reuse it. Every binding is
//!   stamped with a monotonic generation ([`BindGuard`] / [`LeaseStamp`])
//!   that is revoked at the instant of the steal, so a stale PKRU is
//!   refused at the gate and — thanks to the barrier — can never name a
//!   recycled key's new owner.
//! - [`TenantRegistry`] builds tenants on top: each [`Tenant`] owns a
//!   virtual key, a private data region (parked until bound), an
//!   allocator carve-out, a syscall allow-list, and its own violation
//!   policy/quarantine breaker. [`TenantLease`] bundles the generation-
//!   stamped binding with the untrusted PKRU to run the compartment
//!   under.
//!
//! The isolation invariant — proved by the cross-tenant proptest in
//! `tests/cross_tenant.rs` — is that tenant A can never read a byte of
//! tenant B's pages: attacks are caught statically, denied by PKRU, or
//! quarantined, never uncaught.

mod tenant;
mod vkey;

pub use tenant::{
    tenant_canary, tenant_pkru, Tenant, TenantConfig, TenantError, TenantLease, TenantRegistry,
    TENANT_BASE, TENANT_DATA_PAGES, TENANT_SPAN,
};
pub use vkey::{BindGuard, VirtualPkey, VirtualPkeyError, VirtualPkeyPool, VkeyPoolStats};

// Re-exported so lease holders can name the revocation types without
// depending on `pkru-mpk` directly.
pub use pkru_mpk::{LeaseStamp, RevocationBarrier, WorkerEpoch};
