//! Multi-tenant compartments: virtual protection keys over real MPK.
//!
//! The paper's model is one trusted compartment `T` and one untrusted
//! compartment `U`. Production serving means *many* mutually-distrusting
//! tenants sharing one address space — which collides head-on with the
//! hardware limit of 15 allocatable protection keys. This crate resolves
//! the collision libmpk-style, with two layers:
//!
//! - [`VirtualPkeyPool`] multiplexes an unbounded virtual-key space onto
//!   the hardware keys: binding a virtual key lazily steals the
//!   least-recently-bound hardware key, re-tags the evicted owner's
//!   pages onto a dedicated no-access *park key* (a `pkey_mprotect`
//!   storm that bumps the global TLB epoch, so every per-thread software
//!   TLB resynchronizes), and hands the freed key to the binder.
//!   [`BindGuard`] pins a binding for the duration of a gate region so
//!   eviction can never race an open compartment switch.
//! - [`TenantRegistry`] builds tenants on top: each [`Tenant`] owns a
//!   virtual key, a private data region (parked until bound), an
//!   allocator carve-out, a syscall allow-list, and its own violation
//!   policy/quarantine breaker. [`TenantLease`] bundles the pinned
//!   binding with the untrusted PKRU to run the compartment under.
//!
//! The isolation invariant — proved by the cross-tenant proptest in
//! `tests/cross_tenant.rs` — is that tenant A can never read a byte of
//! tenant B's pages: attacks are caught statically, denied by PKRU, or
//! quarantined, never uncaught.

mod tenant;
mod vkey;

pub use tenant::{
    tenant_canary, tenant_pkru, Tenant, TenantConfig, TenantError, TenantLease, TenantRegistry,
    TENANT_BASE, TENANT_DATA_PAGES, TENANT_SPAN,
};
pub use vkey::{BindGuard, VirtualPkey, VirtualPkeyError, VirtualPkeyPool, VkeyPoolStats};
