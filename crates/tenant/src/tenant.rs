//! Tenants: one untrusted compartment each, multiplexed over shared keys.
//!
//! A [`Tenant`] is the multi-tenant generalization of the paper's single
//! untrusted compartment `U`: it owns a virtual protection key (bound to
//! hardware on demand by the registry's [`VirtualPkeyPool`]), a private
//! data region carved out of a dedicated reservation (described by a
//! [`PkAllocConfig`]), a syscall allow-list ([`SyscallFilter`], deny-all
//! by default), and an [`MpkPolicy`] with its own violation ledger and
//! quarantine breaker — one abusive tenant is refused service while its
//! neighbours keep flowing.
//!
//! The rights story is strict: a tenant's untrusted PKRU grants exactly
//! two keys — key 0 (the shared untrusted heap the engine allocates
//! from) and the tenant's currently bound hardware key. Everything else —
//! the trusted key over `M_T`, the park key, every other tenant's key —
//! is access-disabled. An evicted tenant's pages are re-tagged onto the
//! park key *before* its hardware key moves, and the key itself is
//! revoked (its lease generation zeroed) and quarantined behind the
//! registry pool's revocation barrier — so a stale PKRU can neither
//! reach the victim's parked pages nor, once the key is eventually
//! recycled, the key's new owner (see `vkey` and `pkru_mpk::revoke`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lir::{SharedHost, SyscallFilter};
use pkalloc::PkAllocConfig;
use pkru_handler::{MpkPolicy, ViolationCounters, ViolationHandler};
use pkru_mpk::{LeaseStamp, Pkey, PkeyRights, Pkru, SharedPkeyPool};
use pkru_vmem::{Prot, SharedSpace, VirtAddr, PAGE_SIZE};

use crate::vkey::{BindGuard, VirtualPkey, VirtualPkeyError, VirtualPkeyPool, VkeyPoolStats};

/// Base of the tenant data reservation. Disjoint from the allocator's
/// trusted (`0x4000_0000_0000+`) and untrusted (`0x0800_0000_0000+`)
/// reservations and the planted secret page.
pub const TENANT_BASE: VirtAddr = 0x3000_0000_0000;

/// Per-tenant slice of the reservation (4 MiB — tenant id picks the
/// slice, so regions can never collide).
pub const TENANT_SPAN: u64 = 1 << 22;

/// Default private data pages mapped per tenant.
pub const TENANT_DATA_PAGES: u64 = 4;

/// Errors raised by the tenant registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TenantError {
    /// The hardware key pool is exhausted and nothing can be evicted —
    /// the typed setup-path error (never a panic).
    KeysExhausted,
    /// The bind backoff expired with every candidate hardware key still
    /// quarantined behind the revocation barrier; retry after a yield.
    Busy,
    /// An explicit evict was refused: the tenant has a request (lease)
    /// in flight.
    Pinned(usize),
    /// No tenant with that id.
    UnknownTenant(usize),
    /// Mapping the tenant's data region failed.
    Map(String),
    /// A `pkey_mprotect` re-tag storm failed.
    Retag(String),
}

impl std::fmt::Display for TenantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantError::KeysExhausted => write!(f, "hardware protection keys exhausted"),
            TenantError::Busy => {
                write!(f, "every hardware key quarantined behind the revocation barrier; retry")
            }
            TenantError::Pinned(t) => write!(f, "tenant {t} is leased by an in-flight request"),
            TenantError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            TenantError::Map(m) => write!(f, "tenant region map: {m}"),
            TenantError::Retag(m) => write!(f, "tenant re-tag: {m}"),
        }
    }
}

impl std::error::Error for TenantError {}

fn lift(e: VirtualPkeyError) -> TenantError {
    match e {
        VirtualPkeyError::Exhausted => TenantError::KeysExhausted,
        VirtualPkeyError::AllPinned => TenantError::Busy,
        VirtualPkeyError::Pinned(v) => TenantError::Pinned(v.index() as usize),
        VirtualPkeyError::Unknown(v) => TenantError::UnknownTenant(v.index() as usize),
        VirtualPkeyError::Retag(m) => TenantError::Retag(m),
    }
}

/// How one tenant's compartment is configured.
#[derive(Clone, Debug)]
pub struct TenantConfig {
    /// What happens on an MPK violation attributed to this tenant.
    pub policy: MpkPolicy,
    /// The tenant's syscall allow-list (deny-all unless widened).
    pub syscalls: SyscallFilter,
    /// Private data pages to map in the tenant's slice.
    pub data_pages: u64,
}

impl Default for TenantConfig {
    fn default() -> TenantConfig {
        TenantConfig {
            policy: MpkPolicy::Enforce,
            syscalls: SyscallFilter::deny_all(),
            data_pages: TENANT_DATA_PAGES,
        }
    }
}

/// The canary planted at each tenant's region base at creation — the
/// byte pattern a cross-tenant read would exfiltrate.
pub fn tenant_canary(id: usize) -> u64 {
    0x7e4a_4e54_0000_0000 | id as u64
}

/// One tenant's compartment: virtual key, data region, policy, filter.
#[derive(Debug)]
pub struct Tenant {
    id: usize,
    vkey: VirtualPkey,
    base: VirtAddr,
    data_len: u64,
    policy: MpkPolicy,
    filter: SyscallFilter,
    /// The tenant's violation ledger and quarantine breaker (`None`
    /// under [`MpkPolicy::Enforce`], mirroring the serve runtime).
    handler: Option<Arc<ViolationHandler>>,
    /// The tenant's carve-out geometry (its slice of the reservation).
    alloc_config: PkAllocConfig,
    requests: AtomicU64,
    rejected: AtomicU64,
    bind_retries: AtomicU64,
}

impl Tenant {
    /// The tenant's registry id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The tenant's virtual protection key.
    pub fn vkey(&self) -> VirtualPkey {
        self.vkey
    }

    /// Base address of the tenant's private data region (the canary
    /// lives in the first slot).
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Length of the mapped data region in bytes.
    pub fn data_len(&self) -> u64 {
        self.data_len
    }

    /// A scratch slot workers touch under the tenant's rights on every
    /// request (second slot, after the canary).
    pub fn scratch_addr(&self) -> VirtAddr {
        self.base + 8
    }

    /// The tenant's violation policy.
    pub fn policy(&self) -> MpkPolicy {
        self.policy
    }

    /// The tenant's syscall allow-list.
    pub fn syscall_filter(&self) -> &SyscallFilter {
        &self.filter
    }

    /// The tenant's violation handler (`None` under `enforce`).
    pub fn handler(&self) -> Option<&Arc<ViolationHandler>> {
        self.handler.as_ref()
    }

    /// The tenant's allocator carve-out geometry.
    pub fn alloc_config(&self) -> &PkAllocConfig {
        &self.alloc_config
    }

    /// Whether the tenant's quarantine breaker has tripped.
    pub fn quarantined(&self) -> bool {
        self.handler.as_ref().is_some_and(|h| h.tripped())
    }

    /// Counts one request served under this tenant's compartment.
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request refused because the tenant is quarantined.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests served under this tenant's compartment.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests refused while the tenant was quarantined.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Counts one retried bind attempt for this tenant (key pressure:
    /// the first attempt found every key quarantined).
    pub fn record_bind_retry(&self) {
        self.bind_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Bind attempts beyond the first needed to lease this tenant's key.
    pub fn bind_retries(&self) -> u64 {
        self.bind_retries.load(Ordering::Relaxed)
    }

    /// The tenant's violation counters (zero under `enforce`).
    pub fn violation_counters(&self) -> ViolationCounters {
        self.handler.as_ref().map(|h| h.counters()).unwrap_or_default()
    }
}

/// A bound tenant: the hardware-key lease plus the untrusted PKRU to run
/// its compartment under. The lease no longer pins the binding — the
/// pool may steal the key mid-request, revoking the lease's generation —
/// so holders install [`TenantLease::stamp`] on their gates (which then
/// refuse stale entry typed) and re-bind on [`TenantLease::is_current`]
/// turning false.
#[derive(Debug)]
pub struct TenantLease {
    guard: BindGuard,
    pkru: Pkru,
    tenant: Arc<Tenant>,
}

impl TenantLease {
    /// The hardware key the tenant wore when the lease was granted.
    /// Only meaningful while [`TenantLease::is_current`] holds.
    pub fn hw_key(&self) -> Pkey {
        self.guard.hw_key()
    }

    /// The untrusted PKRU for this tenant's compartment: key 0 and the
    /// bound hardware key, nothing else.
    pub fn pkru(&self) -> Pkru {
        self.pkru
    }

    /// The leased tenant.
    pub fn tenant(&self) -> &Arc<Tenant> {
        &self.tenant
    }

    /// The binding generation this lease was granted at.
    pub fn generation(&self) -> u64 {
        self.guard.generation()
    }

    /// Whether the lease still names the live binding — `false` once the
    /// tenant's hardware key has been stolen or evicted.
    pub fn is_current(&self) -> bool {
        self.guard.is_current()
    }

    /// The liveness stamp to install alongside [`TenantLease::pkru`] via
    /// `Gates::set_untrusted_lease`, so compartment entry validates the
    /// lease before granting its rights.
    pub fn stamp(&self) -> LeaseStamp {
        self.guard.stamp()
    }
}

/// The untrusted PKRU for a compartment bound to `hw`: Linux's default
/// (key 0 only) plus read/write on `hw`. Denies the trusted key, the
/// park key, and every other tenant's key by construction.
pub fn tenant_pkru(hw: Pkey) -> Pkru {
    Pkru::linux_default().with_rights(hw, PkeyRights::ReadWrite)
}

/// The registry: all tenants of one shared host, plus the virtual key
/// pool that multiplexes them onto the hardware key space.
#[derive(Debug)]
pub struct TenantRegistry {
    space: SharedSpace,
    trusted_pkey: Pkey,
    pool: VirtualPkeyPool,
    tenants: Vec<Arc<Tenant>>,
}

impl TenantRegistry {
    /// Creates a registry over a serving host's space and key pool.
    ///
    /// Allocates the park key up front; exhaustion surfaces typed as
    /// [`TenantError::KeysExhausted`], never as a panic.
    pub fn new(host: &SharedHost) -> Result<TenantRegistry, TenantError> {
        TenantRegistry::with_space(
            host.space().clone(),
            host.pkey_pool().clone(),
            host.trusted_pkey(),
        )
    }

    /// Creates a registry over explicit space/pool handles (tests and
    /// harnesses that run without a full serving host).
    pub fn with_space(
        space: SharedSpace,
        hw: SharedPkeyPool,
        trusted_pkey: Pkey,
    ) -> Result<TenantRegistry, TenantError> {
        let pool = VirtualPkeyPool::new(space.clone(), hw).map_err(lift)?;
        Ok(TenantRegistry { space, trusted_pkey, pool, tenants: Vec::new() })
    }

    /// Registers a tenant: a fresh virtual key, a mapped data region in
    /// the tenant's slice of the reservation (tagged with the park key
    /// until first bind), and a canary in its first slot.
    pub fn add_tenant(&mut self, config: TenantConfig) -> Result<Arc<Tenant>, TenantError> {
        let id = self.tenants.len();
        let vkey = self.pool.register();
        let base = TENANT_BASE + id as u64 * TENANT_SPAN;
        let data_len = config.data_pages.max(1) * PAGE_SIZE;
        assert!(data_len <= TENANT_SPAN, "tenant data exceeds its slice");
        self.space
            .mmap_at(base, data_len, Prot::READ_WRITE)
            .map_err(|e| TenantError::Map(e.to_string()))?;
        // Plant the canary (and zero the scratch slot) from `T` before
        // the region is parked behind the tenant's key.
        self.space
            .write_u64(Pkru::ALL_ACCESS, base, tenant_canary(id))
            .map_err(|e| TenantError::Map(format!("canary: {e:?}")))?;
        self.pool.add_region(vkey, base, data_len, Prot::READ_WRITE).map_err(lift)?;
        let handler = match config.policy {
            MpkPolicy::Enforce => None,
            policy => Some(Arc::new(
                // Grants are scoped to the trusted key: a fault on any
                // *other* key (another tenant's pages, the park key) is
                // denied outright — audit-mode single-stepping must never
                // become a cross-tenant read primitive.
                ViolationHandler::new(policy, id).with_grant_scope(self.trusted_pkey),
            )),
        };
        let tenant = Arc::new(Tenant {
            id,
            vkey,
            base,
            data_len,
            policy: config.policy,
            filter: config.syscalls,
            handler,
            alloc_config: PkAllocConfig {
                trusted_base: base,
                trusted_span: 0,
                untrusted_base: base,
                untrusted_span: TENANT_SPAN,
                unified_pools: false,
            },
            requests: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            bind_retries: AtomicU64::new(0),
        });
        self.tenants.push(Arc::clone(&tenant));
        Ok(tenant)
    }

    /// Registers `n` tenants sharing one policy (the serve path).
    pub fn populate(&mut self, n: usize, policy: MpkPolicy) -> Result<(), TenantError> {
        for _ in 0..n {
            self.add_tenant(TenantConfig { policy, ..TenantConfig::default() })?;
        }
        Ok(())
    }

    /// Binds tenant `id`'s virtual key (stealing an LRU hardware key
    /// under pressure) and returns the lease to run its compartment
    /// under. [`TenantError::Busy`] is retryable.
    pub fn bind(&self, id: usize) -> Result<TenantLease, TenantError> {
        let tenant = self.tenants.get(id).ok_or(TenantError::UnknownTenant(id))?;
        let guard = self.pool.bind(tenant.vkey()).map_err(lift)?;
        let pkru = tenant_pkru(guard.hw_key());
        Ok(TenantLease { guard, pkru, tenant: Arc::clone(tenant) })
    }

    /// Like [`TenantRegistry::bind`], but retries with exponential
    /// backoff while every candidate key sits quarantined behind the
    /// revocation barrier (bounded; returns [`TenantError::Busy`] if the
    /// pressure never clears within `attempts`). Each retry is recorded
    /// against the tenant's `bind_retries` stat.
    pub fn bind_with_retry(&self, id: usize, attempts: usize) -> Result<TenantLease, TenantError> {
        let tenant = self.tenants.get(id).ok_or(TenantError::UnknownTenant(id))?;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                tenant.record_bind_retry();
                // Backoff on top of the pool's own bounded wait — the
                // quarantine matures as workers reach their restore
                // points, so a short sleep is usually enough.
                std::thread::sleep(Duration::from_micros(50 << attempt.min(4)));
            }
            match self.bind(id) {
                Err(TenantError::Busy) => {}
                other => return other,
            }
        }
        Err(TenantError::Busy)
    }

    /// Explicitly evicts tenant `id`: revokes its lease generation,
    /// parks its pages, and quarantines its hardware key behind the
    /// revocation barrier.
    pub fn evict(&self, id: usize) -> Result<bool, TenantError> {
        let tenant = self.tenants.get(id).ok_or(TenantError::UnknownTenant(id))?;
        self.pool.evict(tenant.vkey()).map_err(|e| match e {
            VirtualPkeyError::Pinned(_) => TenantError::Pinned(id),
            other => lift(other),
        })
    }

    /// The tenant with registry id `id`.
    pub fn tenant(&self, id: usize) -> Option<&Arc<Tenant>> {
        self.tenants.get(id)
    }

    /// All tenants, in id order.
    pub fn tenants(&self) -> &[Arc<Tenant>] {
        &self.tenants
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The virtual key pool (bind/evict/re-tag counters live here).
    pub fn pool(&self) -> &VirtualPkeyPool {
        &self.pool
    }

    /// Snapshot of the key-multiplexing counters.
    pub fn key_stats(&self) -> VkeyPoolStats {
        self.pool.stats()
    }

    /// The trusted key protecting `M_T` on this host.
    pub fn trusted_pkey(&self) -> Pkey {
        self.trusted_pkey
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkru_mpk::AccessKind;

    fn registry() -> TenantRegistry {
        let space = SharedSpace::new();
        let hw = SharedPkeyPool::new();
        let trusted = hw.alloc().unwrap();
        TenantRegistry::with_space(space, hw, trusted).unwrap()
    }

    #[test]
    fn tenant_pkru_grants_exactly_key0_and_the_bound_key() {
        let hw = Pkey::new(5).unwrap();
        let pkru = tenant_pkru(hw);
        assert!(pkru.allows(Pkey::DEFAULT, AccessKind::Write));
        assert!(pkru.allows(hw, AccessKind::Read));
        assert!(pkru.allows(hw, AccessKind::Write));
        for k in 1..pkru_mpk::MAX_PKEYS {
            let key = Pkey::new(k).unwrap();
            if key != hw {
                assert!(!pkru.allows(key, AccessKind::Read), "key {k} must be denied");
            }
        }
    }

    #[test]
    fn tenants_get_disjoint_slices_and_canaries() {
        let mut reg = registry();
        reg.populate(3, MpkPolicy::Enforce).unwrap();
        let a = reg.tenant(0).unwrap();
        let b = reg.tenant(1).unwrap();
        assert_eq!(a.base() + TENANT_SPAN, b.base());
        for t in reg.tenants() {
            let read = reg.space.read_u64(Pkru::ALL_ACCESS, t.base()).unwrap();
            assert_eq!(read, tenant_canary(t.id()));
        }
    }

    #[test]
    fn bound_tenant_reads_its_own_pages_but_not_a_neighbours() {
        let mut reg = registry();
        reg.populate(2, MpkPolicy::Enforce).unwrap();
        let lease = reg.bind(0).unwrap();
        let own = reg.space.read_u64(lease.pkru(), reg.tenant(0).unwrap().base());
        assert_eq!(own.unwrap(), tenant_canary(0));
        // Neighbour parked: denied via the park key.
        let cross = reg.space.read_u64(lease.pkru(), reg.tenant(1).unwrap().base());
        assert!(cross.unwrap_err().is_pkey_violation());
        // Neighbour bound: denied via its own (different) key.
        let lease_b = reg.bind(1).unwrap();
        let cross = reg.space.read_u64(lease.pkru(), reg.tenant(1).unwrap().base());
        assert!(cross.unwrap_err().is_pkey_violation());
        drop(lease_b);
    }

    /// The headline regression test for the key-recycling read
    /// primitive. Before the revocation protocol, `evict` freed tenant
    /// 0's hardware key immediately and tenant 1's bind recycled it (the
    /// lowest-free rule) — so a stale PKRU minted for tenant 0 silently
    /// read tenant 1's canary. Now the key sits in quarantine until the
    /// PKRU's holder passes the revocation barrier, and the stale read
    /// of the recycled key's new owner **must fault**.
    #[test]
    fn stale_pkru_cannot_read_the_recycled_keys_new_owner() {
        let mut reg = registry();
        reg.populate(2, MpkPolicy::Enforce).unwrap();
        // The worker that minted the stale PKRU is inside a gate region:
        // it registered with the barrier and entered before the evict.
        let holder = reg.pool().barrier().register();
        let (stale_pkru, stamp, stolen_key) = {
            let lease = reg.bind(0).unwrap();
            holder.enter();
            (lease.pkru(), lease.stamp(), lease.hw_key())
        };
        assert!(stamp.is_current());
        reg.evict(0).unwrap();
        assert!(!stamp.is_current(), "evict revokes the lease generation");
        // Tenant 1 binds while the stale PKRU's holder is still inside
        // its region: the quarantined key may not be recycled yet, so
        // tenant 1 wears a *different* key.
        let lease_b = reg.bind(1).unwrap();
        assert_ne!(
            lease_b.hw_key(),
            stolen_key,
            "a quarantined key must not be recycled while its stale PKRU may live"
        );
        // Tenant 0's parked pages are dark under the stale PKRU...
        let parked = reg.space.read_u64(stale_pkru, reg.tenant(0).unwrap().base());
        assert!(parked.unwrap_err().is_pkey_violation(), "parked pages must be dark");
        // ...and so is the new owner of everything the stale PKRU still
        // grants — the read primitive this protocol closes. On the old
        // pool this read *succeeded* (the documented "known limit").
        let cross = reg.space.read_u64(stale_pkru, reg.tenant(1).unwrap().base());
        assert!(
            cross.unwrap_err().is_pkey_violation(),
            "stale PKRU read the recycled key's new owner"
        );
        drop(lease_b);
        // The holder reaches its restore point (drops to base rights):
        // the quarantine matures and only now is the key reused.
        holder.park();
        let lease_a = reg.bind(0).unwrap();
        assert_eq!(lease_a.hw_key(), stolen_key, "the matured key recycles after the barrier");
        assert!(reg.key_stats().deferred_reuses >= 1);
        assert!(reg.key_stats().revocations >= 1);
    }

    #[test]
    fn bind_with_retry_counts_retries_against_the_tenant() {
        let space = SharedSpace::new();
        let hw = SharedPkeyPool::new();
        let trusted = hw.alloc().unwrap();
        let mut reg = TenantRegistry::with_space(space, hw.clone(), trusted).unwrap();
        reg.populate(2, MpkPolicy::Enforce).unwrap();
        // Burn the pool down to one free key, bind it to tenant 0, and
        // park a worker inside a gate region so a steal's quarantine can
        // never mature while it sits there.
        let mut held = Vec::new();
        while hw.allocated_count() < 15 {
            held.push(hw.alloc().unwrap());
        }
        drop(reg.bind(0).unwrap());
        let holder = reg.pool().barrier().register();
        holder.enter();
        let err = reg.bind_with_retry(1, 3).expect_err("the barrier never clears");
        assert_eq!(err, TenantError::Busy);
        assert_eq!(reg.tenant(1).unwrap().bind_retries(), 2, "attempts 2 and 3 are retries");
        // The worker parks: the quarantined key matures and the next
        // attempt succeeds first try, leaving the counter untouched.
        holder.park();
        assert!(reg.bind_with_retry(1, 3).is_ok());
        assert_eq!(reg.tenant(1).unwrap().bind_retries(), 2);
    }

    #[test]
    fn default_tenant_filter_denies_every_syscall() {
        let mut reg = registry();
        reg.populate(1, MpkPolicy::Enforce).unwrap();
        let t = reg.tenant(0).unwrap();
        assert!(!t.syscall_filter().permits(lir::SysKind::Map));
        assert!(!t.syscall_filter().permits(lir::SysKind::PkeyMprotect));
    }

    #[test]
    fn quarantine_policy_gets_a_scoped_handler() {
        let mut reg = registry();
        reg.populate(1, MpkPolicy::Quarantine { threshold: 2 }).unwrap();
        let t = reg.tenant(0).unwrap();
        let handler = t.handler().expect("quarantine tenants carry a handler");
        assert_eq!(handler.grant_scope(), Some(reg.trusted_pkey()));
        assert!(!t.quarantined());
    }
}
