//! Profile-then-enforce on the browser, end to end.
//!
//! The browser-scale version of the pipeline: run a profiling corpus
//! (pages plus scripts, like the paper's WPT/jQuery/Selenium corpus),
//! inspect which allocation sites the profiler discovered, and run the
//! enforcement build — which works on profiled flows and kills everything
//! else.
//!
//! Run with: `cargo run --example profiling_pipeline`

use pkru_safe_repro::servolite::{Browser, BrowserConfig};

const PAGE: &str = r#"
<div id="app">
  <h1 id="title">Profiling demo</h1>
  <ul id="list"><li>a</li><li>b</li><li>c</li></ul>
</div>
"#;

/// The "browsing session" used as the profiling corpus.
const CORPUS: &str = r#"
var title = document.getElementById('title');
var s = title.tagName + title.id + title.innerText();
var list = document.getElementById('list');
for (var i = 0; i < list.childCount; i++) {
  s += list[i].innerText();
}
var li = document.createElement('li');
list.appendChild(li);
li.setText('added');
console.log('corpus saw:', s);
"#;

fn main() {
    // Stage 1-3: profiling run over the corpus.
    let mut profiler = Browser::new(BrowserConfig::Profiling).expect("browser");
    profiler.load_html(PAGE).expect("page");
    profiler.eval_script(CORPUS).expect("corpus");
    println!("console during profiling: {:?}", profiler.console.borrow());
    let profile = profiler.into_profile();
    println!(
        "\nprofile: {} shared sites from {} observed faults",
        profile.len(),
        profile.faults_observed
    );

    // Stage 4: the enforcement build.
    let mut browser = Browser::with_profile(BrowserConfig::Mpk, Some(&profile)).expect("browser");
    browser.load_html(PAGE).expect("page");

    println!("\nsite bindings after profile application:");
    for (site, domain, _) in browser.census() {
        if domain == pkru_safe_repro::pkalloc::Domain::Untrusted {
            println!("  {:<28} -> M_U (shared)", site.name());
        }
    }

    // Profiled flows work...
    let v = browser
        .eval_script("return document.getElementById('title').innerText();")
        .expect("profiled flow");
    println!("\nprofiled flow result: {v:?}");
    let stats = browser.stats();
    println!(
        "transitions = {}, %M_U = {:.1}%",
        stats.transitions,
        stats.percent_untrusted()
    );

    // ...and a flow the corpus never exercised is contained. Attribute
    // tables were never read by the corpus, so they are still trusted.
    match browser.eval_script(
        "document.getElementById('title').setAttribute('data-x', '1'); \
         return document.getElementById('title').getAttribute('data-x');",
    ) {
        Ok(v) => println!("unprofiled flow (gated native path) returned: {v:?}"),
        Err(e) => println!("unprofiled direct flow was contained: {e}"),
    }
}
