//! Profile-then-enforce on the browser, end to end.
//!
//! The browser-scale version of the pipeline: run a profiling corpus
//! (pages plus scripts, like the paper's WPT/jQuery/Selenium corpus),
//! inspect which allocation sites the profiler discovered, and run the
//! enforcement build — which works on profiled flows and kills everything
//! else.
//!
//! The second half replays the same profile-vs-enforce story at the LIR
//! level and adds the static counterpart: the escape analysis predicts
//! every site that *may* reach the untrusted compartment, the profiler
//! records the ones that *did*, and the soundness comparator checks that
//! the first set covers the second.
//!
//! Run with: `cargo run --example profiling_pipeline`

use pkru_safe_repro::core_pipeline::{run_profiling, Annotations, Pipeline, ProfileInput};
use pkru_safe_repro::lir::{parse_module, FaultPolicy, Interp, Machine};
use pkru_safe_repro::servolite::{Browser, BrowserConfig};
use pkru_safe_repro::{analysis, core_pipeline};

const PAGE: &str = r#"
<div id="app">
  <h1 id="title">Profiling demo</h1>
  <ul id="list"><li>a</li><li>b</li><li>c</li></ul>
</div>
"#;

/// The "browsing session" used as the profiling corpus.
const CORPUS: &str = r#"
var title = document.getElementById('title');
var s = title.tagName + title.id + title.innerText();
var list = document.getElementById('list');
for (var i = 0; i < list.childCount; i++) {
  s += list[i].innerText();
}
var li = document.createElement('li');
list.appendChild(li);
li.setText('added');
console.log('corpus saw:', s);
"#;

fn main() {
    // Stage 1-3: profiling run over the corpus.
    let mut profiler = Browser::new(BrowserConfig::Profiling).expect("browser");
    profiler.load_html(PAGE).expect("page");
    profiler.eval_script(CORPUS).expect("corpus");
    println!("console during profiling: {:?}", profiler.console.borrow());
    let profile = profiler.into_profile();
    println!(
        "\nprofile: {} shared sites from {} observed faults",
        profile.len(),
        profile.faults_observed
    );

    // Stage 4: the enforcement build.
    let mut browser = Browser::with_profile(BrowserConfig::Mpk, Some(&profile)).expect("browser");
    browser.load_html(PAGE).expect("page");

    println!("\nsite bindings after profile application:");
    for (site, domain, _) in browser.census() {
        if domain == pkru_safe_repro::pkalloc::Domain::Untrusted {
            println!("  {:<28} -> M_U (shared)", site.name());
        }
    }

    // Profiled flows work...
    let v = browser
        .eval_script("return document.getElementById('title').innerText();")
        .expect("profiled flow");
    println!("\nprofiled flow result: {v:?}");
    let stats = browser.stats();
    println!("transitions = {}, %M_U = {:.1}%", stats.transitions, stats.percent_untrusted());

    // ...and a flow the corpus never exercised is contained. Attribute
    // tables were never read by the corpus, so they are still trusted.
    match browser.eval_script(
        "document.getElementById('title').setAttribute('data-x', '1'); \
         return document.getElementById('title').getAttribute('data-x');",
    ) {
        Ok(v) => println!("unprofiled flow (gated native path) returned: {v:?}"),
        Err(e) => println!("unprofiled direct flow was contained: {e}"),
    }

    static_vs_dynamic();
}

/// Static escape analysis vs dynamic profiling on the LIR pipeline.
fn static_vs_dynamic() {
    let source = parse_module(include_str!("profiling_pipeline.lir")).expect("parse");
    let pipeline =
        Pipeline::new(source, Annotations::new()).with_input(ProfileInput::new("main", &[0])); // corpus: hot path only

    // The static side: every site that MAY reach U, on any path.
    let analysis_result = pipeline.static_analysis().expect("static analysis");
    let static_profile = analysis_result.static_profile();

    // The dynamic side: every site that DID reach U under the corpus.
    let profiling = pipeline.profiling_build().expect("profiling build");
    let dynamic = run_profiling(&profiling, &[ProfileInput::new("main", &[0])]).expect("profiling");

    println!("\n=== static vs dynamic (LIR pipeline) ===");
    println!(
        "static may-escape: {} of {} site(s); dynamic observed: {} site(s)",
        static_profile.len(),
        analysis_result.total_sites,
        dynamic.len()
    );
    for site in analysis_result.may_escape.iter() {
        let observed = if dynamic.contains(*site) { "also observed" } else { "cold path" };
        println!("  {site}  statically shared ({observed})");
    }
    match analysis::check_profile_soundness(&static_profile, &dynamic) {
        Ok(()) => println!("soundness: dynamic profile covered by the static analysis"),
        Err(missing) => println!("soundness VIOLATION, missing sites: {missing:?}"),
    }

    // Enforcing with the dynamic profile contains the unprofiled cold
    // path; enforcing with the (less precise) static profile covers it.
    for (label, profile) in
        [("dynamic", dynamic.clone()), ("static", static_profile.profile.clone())]
    {
        let mut enforced = pipeline.annotated_build().expect("annotated build");
        core_pipeline::passes::apply_profile(&mut enforced, &profile);
        let mut machine = Machine::split(FaultPolicy::Crash).expect("machine");
        match Interp::new(&enforced, &mut machine).run("main", &[1]) {
            Ok(v) => println!("cold path under {label} profile: returned {v:?}"),
            Err(trap) => println!("cold path under {label} profile: contained ({trap})"),
        }
    }
}
