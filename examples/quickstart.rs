//! Quickstart: the four-stage PKRU-Safe pipeline on a small program.
//!
//! This is the artifact's experiment E1: the same program is built three
//! ways — enforcement without a profile (crashes on the first
//! cross-compartment access), the profiling build (records the shared
//! allocation site), and the final build (shares exactly that site and
//! runs to completion).
//!
//! Run with: `cargo run --example quickstart`

use pkru_safe_repro::core_pipeline::{passes, Annotations, Pipeline, ProfileInput};
use pkru_safe_repro::lir::{parse_module, FaultPolicy, Interp, Machine};
use pkru_safe_repro::provenance::Profile;

/// The demo program: `main` allocates two objects; the untrusted library
/// increments one of them and never sees the other.
const PROGRAM: &str = r#"
untrusted fn @clib::process(1) {
bb0:
  %1 = load %0, 0
  %2 = add %1, 1
  store %0, 0, %2
  ret %2
}
fn @main(0) {
bb0:
  %0 = alloc 64      ; passed to clib -> must live in M_U
  %1 = alloc 64      ; private to the trusted compartment
  store %0, 0, 1336
  store %1, 0, 41
  %2 = call @clib::process(%0)
  print %2
  ret %2
}
"#;

fn main() {
    let annotations = Annotations::new(); // `untrusted` is in the IR text.

    // Step 1: enforcement with an EMPTY profile — the shared object stays
    // in trusted memory and the untrusted read faults.
    println!("== step 1: enforcement without a profile ==");
    let pipeline = Pipeline::new(parse_module(PROGRAM).expect("parse"), annotations.clone());
    let mut module = pipeline.annotated_build().expect("annotate");
    passes::apply_profile(&mut module, &Profile::new());
    let mut machine = Machine::split(FaultPolicy::Crash).expect("machine");
    match Interp::new(&module, &mut machine).run("main", &[]) {
        Err(trap) => println!("crashed as expected: {trap}"),
        Ok(v) => println!("UNEXPECTED success: {v:?}"),
    }

    // Step 2: the profiling build discovers the shared allocation site.
    println!("\n== step 2: profiling run ==");
    let pipeline = Pipeline::new(parse_module(PROGRAM).expect("parse"), annotations.clone());
    let profiling = pipeline.profiling_build().expect("profiling build");
    let profile = pkru_safe_repro::core_pipeline::run_profiling(
        &profiling,
        &[ProfileInput::new("main", &[])],
    )
    .expect("profiling run");
    println!("recorded {} shared allocation site(s):", profile.len());
    for site in profile.sites() {
        println!("  {site}");
    }

    // Step 3: the final build shares exactly that site and works.
    println!("\n== step 3: final instrumented build ==");
    let app = Pipeline::new(parse_module(PROGRAM).expect("parse"), annotations)
        .with_input(ProfileInput::new("main", &[]))
        .build()
        .expect("pipeline");
    println!("census: {}", app.census);
    let (result, machine) = app.run("main", &[]);
    println!(
        "result = {:?}, printed = {:?}, compartment transitions = {}",
        result.expect("run"),
        machine.output,
        machine.gates.transitions()
    );
}
