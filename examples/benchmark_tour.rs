//! A short tour of the evaluation: a slice of each suite across the
//! base / alloc / mpk configurations.
//!
//! The full tables take minutes (`cargo bench`); this example runs a
//! handful of benchmarks and prints the same row format in seconds.
//!
//! Run with: `cargo run --release --example benchmark_tour`

use pkru_safe_repro::servolite::BrowserConfig;
use pkru_safe_repro::workloads::{
    dromaeo, kraken, profile_for, run_config, Benchmark, SuiteSummary,
};

fn main() {
    let mut slice: Vec<Benchmark> = Vec::new();
    let d = dromaeo();
    let k = kraken();
    for name in ["dom-attr", "dom-traverse", "v8-crypto", "sunspider-string-base64"] {
        slice.push(d.iter().find(|b| b.name == name).expect("benchmark").clone());
    }
    for name in ["audio-fft", "json-parse-financial"] {
        slice.push(k.iter().find(|b| b.name == name).expect("benchmark").clone());
    }

    println!("profiling the corpus...");
    let profile = profile_for(&slice).expect("profile");
    println!("profile: {} shared sites\n", profile.len());

    let base = run_config(BrowserConfig::Base, None, &slice).expect("base");
    let alloc = run_config(BrowserConfig::Alloc, Some(&profile), &slice).expect("alloc");
    let mpk = run_config(BrowserConfig::Mpk, Some(&profile), &slice).expect("mpk");

    println!(
        "{:<26} {:>10} {:>8} {:>8} {:>14} {:>8}",
        "benchmark", "base ms", "alloc", "mpk", "transitions", "%M_U"
    );
    for b in &base.rows {
        let a = alloc.rows.iter().find(|r| r.name == b.name).expect("row");
        let m = mpk.rows.iter().find(|r| r.name == b.name).expect("row");
        println!(
            "{:<26} {:>10.2} {:>7.2}x {:>7.2}x {:>14} {:>7.1}%",
            b.name,
            b.seconds * 1e3,
            a.seconds / b.seconds,
            m.seconds / b.seconds,
            m.transitions,
            m.percent_mu
        );
    }
    let summary = SuiteSummary::compare(&base, &mpk);
    println!("\nmean mpk overhead over this slice: {:+.2}%", summary.mean_overhead_pct);
    println!("note the DOM rows: orders of magnitude more transitions, hence the overhead (§5.3)");
}
