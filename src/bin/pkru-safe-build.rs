//! `pkru-safe-build`: the command-line pipeline driver.
//!
//! The drop-in-toolchain face of PKRU-Safe (§4: "a drop-in replacement for
//! a normal Rust toolchain"): point it at a textual LIR program, name the
//! crates you distrust, and it runs the four-stage pipeline — or any
//! single stage, with the profile as a JSON file between stages, exactly
//! like the artifact's three-step walkthrough (E1).
//!
//! ```text
//! pkru-safe-build run       app.lir --distrust clib            # full pipeline + run
//! pkru-safe-build annotate  app.lir --distrust clib            # dump the gated build
//! pkru-safe-build profile   app.lir --distrust clib -o p.json  # stages 2–3
//! pkru-safe-build enforce   app.lir --distrust clib -p p.json  # stage 4 + run
//! pkru-safe-build analyze   app.lir --distrust clib -o s.json  # static escape analysis
//! pkru-safe-build lint      app.lir --stage1                   # gate-integrity lint
//! pkru-safe-build scan      app.lir --json                     # adversarial scan
//! pkru-safe-build check     app.lir                            # parse + verify only
//! pkru-safe-build serve     --workers 4 --requests 200         # worker-pool runtime
//! pkru-safe-build redteam   --samples 200 --seed 7             # attack generator
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use lir::{parse_module, verify_module, Module};
use pkru_provenance::Profile;
use pkru_safe::{run_profiling, Annotations, Pipeline, ProfileInput};
use pkru_server::{serve, Fault, MpkPolicy, ServeConfig, ServeError, TrafficShape};

struct Options {
    command: String,
    input: PathBuf,
    distrust: Vec<String>,
    profile_path: Option<PathBuf>,
    output: Option<PathBuf>,
    entry: String,
    args: Vec<i64>,
    stage1: bool,
    json: bool,
}

const USAGE: &str = "\
pkru-safe-build <command> <input.lir> [options]

commands:
  check      parse and verify the module
  annotate   run stage 1 (gates + site IDs) and print the module
  profile    run stages 2-3 and write the profile (-o profile.json)
  enforce    run stage 4 with a profile (-p profile.json) and execute
  analyze    run stage 1, then the static escape analysis; emits a
             profile-schema JSON of every site that may reach U
             (-o file), and cross-checks a dynamic profile (-p file)
  lint       gate-integrity lint (balanced gates, bracketed calls,
             no gates/hooks in U, no trusted allocs under U rights);
             lints the module as-given, or stage-1 output with --stage1
  scan       adversarial reachability scan (Garmr-style): unsanctioned
             gate gadgets, sys.* outside the allow-list or reachable
             under untrusted rights, trusted pointers published while a
             gate is open; scans the module as-given, or stage-1 output
             with --stage1; non-zero exit on any finding (--json for a
             machine-readable report with reachability witnesses)
  run        run the full pipeline (profile with --entry) and execute
  redteam    generate seeded Garmr-shaped attack modules (no input
             file) and vet each one: every attack must be rejected by
             the scan or stopped at run time (syscall filter, MPK
             fault, quarantine breaker); non-zero exit if any escapes
             (--samples <n>, --seed <n>, --json)
  serve      run the multi-threaded serving runtime (no input file):
             profile the catalog, then serve it from a worker pool with
             per-thread PKRU; fails unless the run is clean

serve options:
  --workers <n>          worker threads (default 4)
  --requests <n>         requests to generate (default 200)
  --queue <n>            queue capacity / backpressure bound (default 32)
  --seed <n>             traffic seed (default 0x5eed)
  --fault <spec>         inject a fault (repeatable):
                         worker=K,kind=setup|panic|mpk|alloc|stall[,at=N]
                         (kind=setup breaks every (re)start of worker K;
                         the others strike K's N-th request, once;
                         kind=stall wedges the worker mid-request until
                         the watchdog condemns and respawns the slot)
  --mpk-policy <p>       what an MPK violation does (default enforce):
                         enforce        deny; the defect dirties the run
                         audit          single-step past it, log it, go on
                         quarantine[:N] audit until N violations from one
                                        worker or one site, then tear the
                                        worker down and flag the site
  --profile <file>       extra profile merged before serving (typically
                         sites absorbed from a previous run's audit log)
  --no-tlb               disable the per-worker software TLB (ablation;
                         behaviour is identical, throughput is not)
  --no-threaded          disable threaded dispatch and fused bulk
                         superinstructions in worker interpreters
                         (ablation; behaviour is identical; adds the
                         dispatch counters to the JSON report)
  --no-ic                disable the engines' shape-keyed inline caches
                         (ablation; behaviour is identical; adds the
                         dispatch counters to the JSON report)
  --tenants <n>          multi-tenant mode: serve a tenant-tagged request
                         mix across n isolated compartments, virtual keys
                         multiplexed onto the hardware key space (default
                         0 = classic single-compartment serving)
  --tenant-policy <p>    per-tenant violation policy (default enforce):
                         enforce|audit|quarantine[:N], as --mpk-policy
                         but scoped to one tenant's compartment
  --deadline-ticks <n>   shed a request still queued after n completed
                         requests (logical deadline clock; default 0 =
                         no deadlines)
  --admission <ms>       bounded-wait admission control: reject instead
                         of blocking once the producer has waited ms on
                         a full queue (0 = shed immediately when full;
                         default: block forever)
  --tenant-rate <burst>  per-tenant fair queueing (needs --tenants):
                         token bucket of <burst> tokens refilled at the
                         fair share, deficit-round-robin dispatch over
                         per-tenant sub-queues
  --stall-timeout <ms>   watchdog deadline: a worker whose heartbeat
                         stops this long with a request in flight is
                         condemned and respawned (default 5000)
  --traffic <shape>      request arrival shape (default uniform):
                         uniform | burst[:len] | zipf[:s_milli]
                         (burst: sticky runs of one tenant+kind;
                         zipf: tenant draw skewed by s = s_milli/1000)
  --pace <us>            microseconds between offered requests
                         (default 0 = offer as fast as possible)
  --latency              record admission-to-completion latency and
                         report p50/p90/p99/p99.9 percentiles
  --json                 emit the report as JSON on stdout

options:
  --distrust <crate>     mark a crate untrusted (repeatable)
  --entry <name>         entry function (default: main)
  --arg <n>              entry argument (repeatable)
  --stage1               lint/scan the annotated build instead of the input
  --json                 emit scan findings as JSON on stdout
  -p, --profile <file>   profile to apply (enforce) or compare (analyze)
  -o, --output <file>    where to write the profile (profile, analyze)
";

fn parse_args() -> Result<Options, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or("missing command")?;
    let input = PathBuf::from(argv.next().ok_or("missing input file")?);
    let mut options = Options {
        command,
        input,
        distrust: Vec::new(),
        profile_path: None,
        output: None,
        entry: "main".to_string(),
        args: Vec::new(),
        stage1: false,
        json: false,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--stage1" => options.stage1 = true,
            "--json" => options.json = true,
            "--distrust" => {
                options.distrust.push(argv.next().ok_or("--distrust needs a crate name")?);
            }
            "--entry" => options.entry = argv.next().ok_or("--entry needs a name")?,
            "--arg" => {
                let raw = argv.next().ok_or("--arg needs a number")?;
                options.args.push(raw.parse().map_err(|_| format!("bad --arg {raw:?}"))?);
            }
            "-p" | "--profile" => {
                options.profile_path = Some(PathBuf::from(argv.next().ok_or("-p needs a file")?));
            }
            "-o" | "--output" => {
                options.output = Some(PathBuf::from(argv.next().ok_or("-o needs a file")?));
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(options)
}

fn load_module(options: &Options) -> Result<Module, String> {
    let text = std::fs::read_to_string(&options.input)
        .map_err(|e| format!("cannot read {}: {e}", options.input.display()))?;
    parse_module(&text).map_err(|e| format!("parse error: {e}"))
}

/// Parses a `--traffic` shape: `uniform`, `burst[:len]` (sticky runs,
/// default length 8), or `zipf[:s_milli]` (skewed tenant draw, default
/// s = 1.0).
fn parse_traffic(spec: &str) -> Result<TrafficShape, String> {
    let (name, param) = match spec.split_once(':') {
        Some((name, param)) => (name, Some(param)),
        None => (spec, None),
    };
    let parse = |what: &str, raw: Option<&str>, default: u32| -> Result<u32, String> {
        match raw {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| format!("bad {what} {raw:?}")),
        }
    };
    match name {
        "uniform" => match param {
            None => Ok(TrafficShape::Uniform),
            Some(_) => Err("uniform takes no parameter".into()),
        },
        "burst" => Ok(TrafficShape::Bursty { run: parse("burst length", param, 8)? }),
        "zipf" => Ok(TrafficShape::Zipf { s_milli: parse("zipf s_milli", param, 1000)? }),
        other => Err(format!("unknown traffic shape {other:?} (uniform|burst[:len]|zipf[:s])")),
    }
}

/// Parses the `serve` flags and runs the worker-pool runtime. Unlike the
/// pipeline commands, `serve` takes no input file: the served catalog is
/// built in.
fn serve_main<I: Iterator<Item = String>>(mut argv: I) -> Result<(), String> {
    let mut config = ServeConfig::default();
    let mut json = false;
    let parse_num = |flag: &str, raw: Option<String>| -> Result<u64, String> {
        let raw = raw.ok_or(format!("{flag} needs a number"))?;
        raw.parse().map_err(|_| format!("bad {flag} {raw:?}"))
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--workers" => config.workers = parse_num("--workers", argv.next())? as usize,
            "--requests" => config.requests = parse_num("--requests", argv.next())?,
            "--queue" => config.queue_capacity = parse_num("--queue", argv.next())? as usize,
            "--seed" => config.seed = parse_num("--seed", argv.next())?,
            "--fault" => {
                let spec = argv.next().ok_or("--fault needs worker=K,kind=...[,at=N]")?;
                config.faults.push(Fault::parse(&spec)?);
            }
            "--mpk-policy" => {
                let spec = argv.next().ok_or("--mpk-policy needs enforce|audit|quarantine[:N]")?;
                config.mpk_policy = MpkPolicy::parse(&spec).map_err(|e| e.to_string())?;
            }
            "--profile" => {
                let path = PathBuf::from(argv.next().ok_or("--profile needs a file")?);
                config.extra_profile = Some(Profile::load(&path).map_err(|e| e.to_string())?);
            }
            "--no-tlb" => config.tlb = false,
            "--no-threaded" => config.threaded = false,
            "--no-ic" => config.ic = false,
            "--tenants" => config.tenants = parse_num("--tenants", argv.next())? as usize,
            "--tenant-policy" => {
                let spec =
                    argv.next().ok_or("--tenant-policy needs enforce|audit|quarantine[:N]")?;
                config.tenant_policy = MpkPolicy::parse(&spec).map_err(|e| e.to_string())?;
            }
            "--deadline-ticks" => {
                config.deadline_ticks = parse_num("--deadline-ticks", argv.next())?;
            }
            "--admission" => {
                config.admission_wait_ms = Some(parse_num("--admission", argv.next())?);
            }
            "--tenant-rate" => {
                config.tenant_rate = Some(parse_num("--tenant-rate", argv.next())?);
            }
            "--stall-timeout" => {
                config.stall_timeout_ms = parse_num("--stall-timeout", argv.next())?;
            }
            "--traffic" => {
                let spec = argv.next().ok_or("--traffic needs uniform|burst[:len]|zipf[:s]")?;
                config.traffic = parse_traffic(&spec)?;
            }
            "--pace" => config.pace_us = parse_num("--pace", argv.next())?,
            "--latency" => config.record_latency = true,
            "--json" => json = true,
            other => return Err(format!("unknown serve option {other:?}")),
        }
    }

    // Pool death carries the partial report: surface it the same way a
    // successful run's report is surfaced, then fail.
    let report = match serve(config) {
        Ok(report) => report,
        Err(ServeError::Worker { worker, message, report: Some(report) }) => {
            if json {
                println!("{}", report.to_json());
            }
            return Err(format!(
                "pool died: worker {worker}: {message} ({} request(s) abandoned)",
                report.requests_abandoned
            ));
        }
        Err(error) => return Err(error.to_string()),
    };
    if json {
        println!("{}", report.to_json());
    } else {
        println!(
            "served {} request(s) on {} worker(s): {:.1} req/s, {} transition(s), \
             queue depth ≤ {} ({} backpressure wait(s))",
            report.requests_served,
            report.config.workers,
            report.throughput_rps,
            report.transitions,
            report.queue.max_depth,
            report.queue.backpressure_waits,
        );
        for w in &report.workers {
            println!(
                "  worker {}: {} request(s) ({} page-load, {} script), {} transition(s)",
                w.worker, w.requests, w.page_loads, w.scripts, w.transitions
            );
        }
        if report.workers_restarted + report.requests_retried + report.injected_faults > 0 {
            println!(
                "  supervision: {} restart(s), {} retried, {} abandoned, {} injected fault(s)",
                report.workers_restarted,
                report.requests_retried,
                report.requests_abandoned,
                report.injected_faults
            );
        }
        if report.workers_stalled > 0 {
            println!(
                "  watchdog: {} stall(s) condemned (deadline {} ms)",
                report.workers_stalled, report.config.stall_timeout_ms
            );
        }
        if report.requests_expired + report.requests_rejected > 0 {
            println!(
                "  overload: {} expired at pop, {} rejected at admission",
                report.requests_expired, report.requests_rejected
            );
        }
        if let Some(latency) = &report.latency {
            println!(
                "  latency ({} sample(s)): p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms, \
                 p99.9 {:.3} ms, max {:.3} ms",
                latency.count,
                latency.p50_ms,
                latency.p90_ms,
                latency.p99_ms,
                latency.p999_ms,
                latency.max_ms
            );
        }
        if report.config.mpk_policy != MpkPolicy::Enforce {
            println!(
                "  {}: {} audited, {} quarantined, {} site(s) flagged, {} logged \
                 ({} dropped)",
                report.config.mpk_policy,
                report.violations_audited,
                report.violations_quarantined,
                report.flagged_sites.len(),
                report.audit_log.len(),
                report.audit_dropped
            );
        }
        if report.config.tenants > 0 {
            let keys = report.tenant_key_stats.unwrap_or_default();
            println!(
                "  tenants: {} over the hardware keys: {} bind(s) ({} hit, {} miss), \
                 {} eviction(s), {} page(s) re-tagged, {} revocation(s), \
                 {} deferred reuse(s), {} key(s) still quarantined",
                report.config.tenants,
                keys.binds,
                keys.hits,
                keys.misses,
                keys.evictions,
                keys.pages_retagged,
                keys.revocations,
                keys.deferred_reuses,
                keys.deferred_keys
            );
            for t in &report.per_tenant {
                let fairness = if report.config.tenant_rate.is_some() {
                    format!(" ({} offered, {} rate-limited)", t.offered, t.rate_limited)
                } else {
                    String::new()
                };
                println!(
                    "    tenant {}: {} request(s){}, {} rejected, {} bind retr{}, \
                     {} audited, {} quarantined{}",
                    t.tenant,
                    t.requests,
                    fairness,
                    t.rejected,
                    t.bind_retries,
                    if t.bind_retries == 1 { "y" } else { "ies" },
                    t.violations_audited,
                    t.violations_quarantined,
                    if t.quarantined { " [quarantined]" } else { "" }
                );
            }
        }
    }
    if report.clean() {
        Ok(())
    } else {
        Err(format!(
            "unclean serve run: {} checksum mismatch(es), {} unexpected fault(s), {} error(s), \
             {} abandoned",
            report.checksum_mismatches,
            report.unexpected_faults,
            report.errors,
            report.requests_abandoned
        ))
    }
}

fn main() -> ExitCode {
    // `serve` is the one command with no input file; dispatch it before
    // the pipeline-style argument parse. An unknown command is rejected
    // here too, so the user gets usage instead of "missing input file".
    let mut argv = std::env::args().skip(1);
    match argv.next().as_deref() {
        Some("serve") => {
            return match serve_main(argv) {
                Ok(()) => ExitCode::SUCCESS,
                Err(message) => {
                    eprintln!("error: {message}");
                    ExitCode::FAILURE
                }
            };
        }
        Some("redteam") => {
            return match redteam_main(argv) {
                Ok(()) => ExitCode::SUCCESS,
                Err(message) => {
                    eprintln!("error: {message}");
                    ExitCode::FAILURE
                }
            };
        }
        Some(
            "check" | "annotate" | "profile" | "enforce" | "analyze" | "lint" | "scan" | "run",
        )
        | None => {}
        Some(other) => {
            eprintln!("error: unknown command {other:?}");
            eprintln!("\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }

    // Usage is only helpful when the command line itself was wrong;
    // build/lint/run diagnostics stand alone.
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match real_main(options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn real_main(options: Options) -> Result<(), String> {
    let module = load_module(&options)?;
    let annotations = Annotations::distrusting(&options.distrust);
    let input = ProfileInput::new(&options.entry, &options.args);

    match options.command.as_str() {
        "check" => {
            verify(&module)?;
            println!("ok: {} function(s), verified", module.functions.len());
            Ok(())
        }
        "annotate" => {
            let pipeline = Pipeline::new(module, annotations);
            let annotated = pipeline.annotated_build().map_err(|e| e.to_string())?;
            print!("{}", annotated.dump());
            Ok(())
        }
        "profile" => {
            let pipeline = Pipeline::new(module, annotations);
            let profiling = pipeline.profiling_build().map_err(|e| e.to_string())?;
            let profile = run_profiling(&profiling, &[input]).map_err(|e| e.to_string())?;
            eprintln!(
                "profiled: {} shared site(s), {} fault(s) observed",
                profile.len(),
                profile.faults_observed
            );
            match &options.output {
                Some(path) => profile.save(path).map_err(|e| e.to_string())?,
                None => println!("{}", profile.to_json()),
            }
            Ok(())
        }
        "enforce" => {
            let profile = match &options.profile_path {
                Some(path) => Profile::load(path).map_err(|e| e.to_string())?,
                None => Profile::new(),
            };
            let pipeline = Pipeline::new(module, annotations);
            let mut enforced = pipeline.annotated_build().map_err(|e| e.to_string())?;
            let moved = pkru_safe::passes::apply_profile(&mut enforced, &profile);
            eprintln!("applied profile: {moved} site(s) moved to M_U");
            execute(&enforced, &options)
        }
        "analyze" => {
            let pipeline = Pipeline::new(module, annotations);
            let analysis = pipeline.static_analysis().map_err(|e| e.to_string())?;
            let static_profile = analysis.static_profile();
            eprintln!(
                "static: {} of {} site(s) may escape to U; {} function(s) may run untrusted",
                static_profile.len(),
                analysis.total_sites,
                analysis.may_run_untrusted.len()
            );
            match &options.output {
                Some(path) => static_profile.save(path).map_err(|e| e.to_string())?,
                None => println!("{}", static_profile.to_json()),
            }
            if let Some(path) = &options.profile_path {
                let dynamic = Profile::load(path).map_err(|e| e.to_string())?;
                pkru_analysis::check_profile_soundness(&static_profile, &dynamic).map_err(
                    |missing| {
                        let sites: Vec<String> = missing.iter().map(|s| s.to_string()).collect();
                        format!(
                            "soundness violation: dynamically-observed site(s) missing from \
                             the static may-escape set: {}",
                            sites.join(", ")
                        )
                    },
                )?;
                eprintln!("soundness: dynamic profile is covered by the static analysis");
            }
            Ok(())
        }
        "lint" => {
            let linted = if options.stage1 {
                Pipeline::new(module, annotations).annotated_build().map_err(|e| e.to_string())?
            } else {
                verify(&module)?;
                module
            };
            pkru_analysis::lint_module(&linted).map_err(|errs| {
                errs.iter().map(|e| e.to_string()).collect::<Vec<_>>().join("; ")
            })?;
            println!("ok: gate integrity verified ({} function(s))", linted.functions.len());
            Ok(())
        }
        "scan" => {
            let scanned = if options.stage1 {
                Pipeline::new(module, annotations).annotated_build().map_err(|e| e.to_string())?
            } else {
                verify(&module)?;
                module
            };
            let findings = pkru_analysis::scan_module(&scanned);
            if options.json {
                println!("{}", scan_report_json(&findings));
            }
            if findings.is_empty() {
                if !options.json {
                    println!(
                        "ok: adversarial scan clean ({} function(s))",
                        scanned.functions.len()
                    );
                }
                Ok(())
            } else {
                if !options.json {
                    for finding in &findings {
                        eprintln!("{finding}");
                    }
                }
                Err(format!("adversarial scan found {} finding(s)", findings.len()))
            }
        }
        "run" => {
            let app = Pipeline::new(module, annotations)
                .with_input(input)
                .with_static_checks()
                .build()
                .map_err(|e| e.to_string())?;
            eprintln!("census: {}", app.census);
            execute(&app.module, &options)
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

/// Generates and vets the red-team corpus: every sampled attack must be
/// rejected by the adversarial scan or stopped at run time.
fn redteam_main<I: Iterator<Item = String>>(mut argv: I) -> Result<(), String> {
    let mut samples: u64 = 32;
    let mut seed: u64 = 0x5eed;
    let mut json = false;
    while let Some(flag) = argv.next() {
        let parse_num = |flag: &str, raw: Option<String>| -> Result<u64, String> {
            let raw = raw.ok_or(format!("{flag} needs a number"))?;
            raw.parse().map_err(|_| format!("bad {flag} {raw:?}"))
        };
        match flag.as_str() {
            "--samples" => samples = parse_num("--samples", argv.next())?,
            "--seed" => seed = parse_num("--seed", argv.next())?,
            "--json" => json = true,
            other => return Err(format!("unknown redteam option {other:?}")),
        }
    }

    use pkru_analysis::redteam::{generate_any, vet, Catch};
    let (mut caught_static, mut caught_dynamic, mut uncaught) = (0u64, 0u64, 0u64);
    let mut rows = Vec::new();
    for i in 0..samples {
        let attack = generate_any(seed.wrapping_add(i));
        let (layer, detail) = match vet(&attack.module()) {
            Catch::Static(findings) => {
                caught_static += 1;
                ("static", findings[0].to_string())
            }
            Catch::Dynamic(cause) => {
                caught_dynamic += 1;
                ("dynamic", cause)
            }
            Catch::Uncaught => {
                uncaught += 1;
                ("uncaught", String::new())
            }
        };
        if layer == "uncaught" && !json {
            eprintln!("UNCAUGHT {} (seed {}):\n{}", attack.kind.label(), attack.seed, attack.text);
        }
        rows.push(format!(
            "{{\"kind\":\"{}\",\"seed\":{},\"caught\":\"{layer}\",\"detail\":\"{}\"}}",
            attack.kind.label(),
            attack.seed,
            json_escape(&detail)
        ));
    }
    if json {
        println!(
            "{{\"samples\":{samples},\"caught_static\":{caught_static},\
             \"caught_dynamic\":{caught_dynamic},\"uncaught\":{uncaught},\
             \"results\":[{}]}}",
            rows.join(",")
        );
    } else {
        println!(
            "red team: {samples} attack(s): {caught_static} caught statically, \
             {caught_dynamic} dynamically, {uncaught} uncaught"
        );
    }
    if uncaught == 0 {
        Ok(())
    } else {
        Err(format!("{uncaught} attack(s) escaped both the scan and the runtime"))
    }
}

/// The `scan --json` report: one object per finding, with the reachability
/// witness as an array of function names (untrusted entry first).
fn scan_report_json(findings: &[pkru_analysis::ScanFinding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let witness: Vec<String> =
            f.witness.iter().map(|w| format!("\"{}\"", json_escape(w))).collect();
        out.push_str(&format!(
            "{{\"code\":\"{}\",\"func\":\"{}\",\"block\":{},\"index\":{},\
             \"witness\":[{}],\"message\":\"{}\"}}",
            f.kind.code(),
            json_escape(&f.func),
            f.block,
            f.index,
            witness.join(","),
            json_escape(&f.to_string())
        ));
    }
    out.push_str("]}");
    out
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

/// Structural verification plus the def-before-use dataflow check.
fn verify(module: &Module) -> Result<(), String> {
    let render =
        |errs: Vec<lir::VerifyError>| errs.iter().map(|e| e.to_string()).collect::<Vec<_>>();
    let mut errors = verify_module(module).err().map(render).unwrap_or_default();
    errors.extend(lir::verify_def_use(module).err().map(render).unwrap_or_default());
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors.join("; "))
    }
}

fn execute(module: &Module, options: &Options) -> Result<(), String> {
    let mut machine = lir::Machine::split(lir::FaultPolicy::Crash).map_err(|e| e.to_string())?;
    let result = lir::Interp::new(module, &mut machine).run(&options.entry, &options.args);
    for line in &machine.output {
        println!("{line}");
    }
    match result {
        Ok(value) => {
            eprintln!(
                "exit: {:?} ({} transitions, {} instructions)",
                value,
                machine.gates.transitions(),
                machine.instret
            );
            Ok(())
        }
        Err(trap) => Err(format!("program crashed: {trap}")),
    }
}
