//! Umbrella crate for the PKRU-Safe reproduction workspace.
//!
//! This root package exists to host the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`. It re-exports every
//! workspace crate under one roof so examples and tests can write
//! `pkru_safe_repro::servolite::Browser` style paths.

pub use lir;
pub use minijs;
pub use pkalloc;
pub use pkru_analysis as analysis;
pub use pkru_gates as gates;
pub use pkru_mpk as mpk;
pub use pkru_provenance as provenance;
pub use pkru_safe as core_pipeline;
pub use pkru_vmem as vmem;
pub use servolite;
pub use workloads;
