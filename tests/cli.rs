//! Integration tests for the `pkru-safe-build` CLI.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    // Cargo puts integration-test binaries in target/<profile>/deps; the
    // CLI lives one level up.
    let mut path = std::env::current_exe().expect("test exe");
    path.pop();
    if path.ends_with("deps") {
        path.pop();
    }
    path.push("pkru-safe-build");
    Command::new(path)
}

fn demo_program(dir: &std::path::Path) -> PathBuf {
    let path = dir.join("demo.lir");
    std::fs::write(
        &path,
        r#"
untrusted fn @clib::bump(1) {
bb0:
  %1 = load %0, 0
  %2 = add %1, 1
  store %0, 0, %2
  ret %2
}
fn @main(0) {
bb0:
  %0 = alloc 16
  store %0, 0, 1336
  %1 = call @clib::bump(%0)
  print %1
  ret %1
}
"#,
    )
    .expect("write demo");
    path
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pkru_safe_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn check_accepts_valid_and_rejects_invalid() {
    let dir = temp_dir("check");
    let program = demo_program(&dir);
    let ok = cli().arg("check").arg(&program).output().expect("run");
    assert!(ok.status.success(), "{}", String::from_utf8_lossy(&ok.stderr));

    let bad = dir.join("bad.lir");
    std::fs::write(&bad, "fn @main(0) {\nbb0:\n  br bb9\n}").expect("write");
    let fail = cli().arg("check").arg(&bad).output().expect("run");
    assert!(!fail.status.success());
    assert!(String::from_utf8_lossy(&fail.stderr).contains("bb9"));
}

#[test]
fn profile_then_enforce_round_trip() {
    let dir = temp_dir("roundtrip");
    let program = demo_program(&dir);
    let profile_path = dir.join("profile.json");

    let profile = cli()
        .args(["profile"])
        .arg(&program)
        .args(["-o"])
        .arg(&profile_path)
        .output()
        .expect("run");
    assert!(profile.status.success(), "{}", String::from_utf8_lossy(&profile.stderr));
    assert!(String::from_utf8_lossy(&profile.stderr).contains("1 shared site"));

    let enforce = cli()
        .args(["enforce"])
        .arg(&program)
        .args(["-p"])
        .arg(&profile_path)
        .output()
        .expect("run");
    assert!(enforce.status.success(), "{}", String::from_utf8_lossy(&enforce.stderr));
    let stdout = String::from_utf8_lossy(&enforce.stdout);
    assert!(stdout.contains("1337"), "{stdout}");
}

#[test]
fn enforce_without_profile_crashes_with_pkey_violation() {
    let dir = temp_dir("noprofile");
    let program = demo_program(&dir);
    let out = cli().args(["enforce"]).arg(&program).output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("pkey violation"), "{stderr}");
}

#[test]
fn full_run_reports_census() {
    let dir = temp_dir("run");
    let program = demo_program(&dir);
    let out = cli().args(["run"]).arg(&program).output().expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("1 of 1 allocation sites"), "{stderr}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("1337"));
}

#[test]
fn analyze_covers_dynamic_profile_on_example() {
    // The checked-in example program has a hot path (exercised by the
    // corpus, arg 0) and a cold path; the static analysis must report a
    // superset of the dynamic profile and the cross-check must pass.
    let dir = temp_dir("analyze");
    let program = PathBuf::from("examples/profiling_pipeline.lir");
    let dynamic = dir.join("dynamic.json");
    let static_out = dir.join("static.json");

    let profile = cli()
        .args(["profile"])
        .arg(&program)
        .args(["--arg", "0", "-o"])
        .arg(&dynamic)
        .output()
        .expect("run");
    assert!(profile.status.success(), "{}", String::from_utf8_lossy(&profile.stderr));
    assert!(String::from_utf8_lossy(&profile.stderr).contains("1 shared site"));

    let analyze = cli()
        .args(["analyze"])
        .arg(&program)
        .args(["-o"])
        .arg(&static_out)
        .args(["-p"])
        .arg(&dynamic)
        .output()
        .expect("run");
    let stderr = String::from_utf8_lossy(&analyze.stderr);
    assert!(analyze.status.success(), "{stderr}");
    assert!(stderr.contains("static: 2 of 2 site(s) may escape"), "{stderr}");
    assert!(stderr.contains("soundness: dynamic profile is covered"), "{stderr}");

    // The emitted file is in the profile schema: enforce accepts it.
    let enforce = cli()
        .args(["enforce"])
        .arg(&program)
        .args(["--arg", "1", "-p"])
        .arg(&static_out)
        .output()
        .expect("run");
    assert!(enforce.status.success(), "{}", String::from_utf8_lossy(&enforce.stderr));
}

#[test]
fn lint_flags_unbalanced_gate() {
    let dir = temp_dir("lint_unbalanced");
    let bad = dir.join("unbalanced.lir");
    std::fs::write(&bad, "fn @main(0) {\nbb0:\n  gate.enter.untrusted\n  ret\n}").expect("write");
    let out = cli().args(["lint"]).arg(&bad).output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("return at index 1 with open gate region"), "{stderr}");
}

#[test]
fn lint_flags_trusted_alloc_in_untrusted_region() {
    let dir = temp_dir("lint_talloc");
    let bad = dir.join("talloc.lir");
    std::fs::write(
        &bad,
        "untrusted fn @u::f(0) {\nbb0:\n  ret\n}\n\
         fn @main(0) {\nbb0:\n  gate.enter.untrusted\n  %0 = call @u::f()\n  \
         %1 = alloc 8\n  gate.exit.untrusted\n  ret %1\n}",
    )
    .expect("write");
    let out = cli().args(["lint"]).arg(&bad).output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("trusted-pool alloc") && stderr.contains("untrusted compartment"),
        "{stderr}"
    );
}

#[test]
fn lint_accepts_stage1_output() {
    let dir = temp_dir("lint_stage1");
    let program = demo_program(&dir);
    let out = cli().args(["lint"]).arg(&program).arg("--stage1").output().expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("gate integrity verified"));
}

#[test]
fn scan_accepts_clean_module_raw_and_stage1() {
    let dir = temp_dir("scan_clean");
    let program = demo_program(&dir);
    let out = cli().args(["scan"]).arg(&program).output().expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("adversarial scan clean"));

    // The compiler's own gated output is sanctioned by shape.
    let out = cli().args(["scan"]).arg(&program).arg("--stage1").output().expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // --json on a clean module: an empty findings array, exit 0.
    let out = cli().args(["scan"]).arg(&program).arg("--json").output().expect("run");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("{\"findings\":[]}"), "{out:?}");
}

#[test]
fn scan_rejects_corpus_attack_with_machine_readable_finding() {
    // The checked-in indirect-gadget attack: exit non-zero, and the JSON
    // report names the gadget, its code, and the witness path through the
    // untrusted dispatcher.
    let program = PathBuf::from("tests/corpus/indirect_gadget.lir");
    let out = cli().args(["scan"]).arg(&program).args(["--json"]).output().expect("run");
    assert!(!out.status.success(), "a corpus attack must fail the scan");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for key in [
        "\"code\":\"SCAN001\"",
        "\"func\":\"callback_table_entry\"",
        "\"witness\":[\"evil::dispatch\",\"callback_table_entry\"]",
    ] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
    assert!(String::from_utf8_lossy(&out.stderr).contains("adversarial scan found"), "{out:?}");

    // Without --json the findings render human-readable on stderr.
    let out = cli().args(["scan"]).arg(&program).output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("SCAN001") && stderr.contains("unsanctioned"), "{stderr}");
}

#[test]
fn redteam_vets_generated_attacks_and_reports_json() {
    let out =
        cli().args(["redteam", "--samples", "18", "--seed", "7", "--json"]).output().expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for key in ["\"samples\":18", "\"uncaught\":0", "\"kind\":\"gadget-reuse\"", "\"caught\":\""] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = cli().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command \"frobnicate\""), "{stderr}");
    assert!(stderr.contains("commands:"), "usage missing: {stderr}");
    assert!(stderr.contains("serve"), "usage must list serve: {stderr}");

    // Same rejection even when an input file follows the bogus command.
    let dir = temp_dir("unknown");
    let program = demo_program(&dir);
    let out = cli().arg("frobnicate").arg(&program).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"), "{out:?}");
}

#[test]
fn missing_command_fails_with_usage() {
    let out = cli().output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("missing command"), "{stderr}");
    assert!(stderr.contains("commands:"), "{stderr}");
}

#[test]
fn serve_happy_path_reports_clean_run() {
    let out = cli().args(["serve", "--workers", "2", "--requests", "24"]).output().expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("served 24 request(s) on 2 worker(s)"), "{stdout}");
    assert!(stdout.contains("worker 0:"), "{stdout}");
    assert!(stdout.contains("worker 1:"), "{stdout}");
}

#[test]
fn serve_json_emits_machine_readable_report() {
    let out = cli()
        .args(["serve", "--workers", "1", "--requests", "8", "--seed", "9", "--json"])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for key in [
        "\"workers\":1",
        "\"requests_served\":8",
        "\"seed\":9",
        "\"checksum_mismatches\":0",
        "\"unexpected_faults\":0",
        "\"per_worker\":[",
    ] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
}

#[test]
fn serve_dispatch_ablation_flags_gate_the_report_schema() {
    // The default run must not grow the pinned report schema: the
    // dispatch counters appear only when a fast path is ablated.
    let base = ["serve", "--workers", "1", "--requests", "8", "--seed", "9", "--json"];
    let out = cli().args(base).output().expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for key in ["dispatch_ic_hits", "dispatch_ic_misses", "superinstructions_fused"] {
        assert!(!stdout.contains(key), "default schema grew a {key} field: {stdout}");
    }

    // --no-threaded: still clean and checksum-identical, no fused ops,
    // but the inline caches keep serving hits.
    let out = cli().args(base).arg("--no-threaded").output().expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for key in
        ["\"requests_served\":8", "\"checksum_mismatches\":0", "\"superinstructions_fused\":0"]
    {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
    let hits: u64 = stdout
        .split("\"dispatch_ic_hits\":")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .and_then(|s| s.parse().ok())
        .expect("dispatch_ic_hits field");
    assert!(hits > 0, "legacy-dispatch lane must still serve IC hits: {stdout}");

    // --no-ic: still clean, no cache traffic at all, but the threaded
    // lane keeps fusing bulk superinstructions.
    let out = cli().args(base).arg("--no-ic").output().expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for key in ["\"requests_served\":8", "\"dispatch_ic_hits\":0", "\"dispatch_ic_misses\":0"] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
    let fused: u64 = stdout
        .split("\"superinstructions_fused\":")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .and_then(|s| s.parse().ok())
        .expect("superinstructions_fused field");
    assert!(fused > 0, "no-IC lane must still fuse bulk ops: {stdout}");
}

#[test]
fn serve_tenants_reports_per_tenant_breakdown() {
    // Multi-tenant mode with more tenants than hardware keys: the run
    // must stay clean, and both the human and JSON reports carry the
    // per-tenant breakdown and the key-multiplexing counters.
    let out = cli()
        .args(["serve", "--workers", "2", "--requests", "48", "--tenants", "20", "--json"])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for key in [
        "\"tenants\":20",
        "\"tenant_policy\":\"enforce\"",
        "\"tenant_keys\":{\"binds\":",
        "\"evictions\":",
        "\"revocations\":",
        "\"deferred_reuses\":",
        "\"bind_retries\":",
        "\"per_tenant\":[{\"tenant\":0,",
        "\"requests_served\":48",
    ] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
    // One bind per request plus one per recorded retry: barrier stalls
    // cost retries, never unaccounted binds.
    let binds: u64 = stdout
        .split("\"tenant_keys\":{\"binds\":")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .and_then(|s| s.parse().ok())
        .expect("binds field");
    let retries: u64 = stdout
        .split("\"bind_retries\":")
        .skip(1)
        .map(|s| s.split(|c: char| !c.is_ascii_digit()).next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(binds, 48 + retries, "binds must equal requests + retries: {stdout}");
}

#[test]
fn serve_tenant_quarantine_isolates_one_tenant() {
    // A tenant-scoped quarantine: the injected violation condemns one
    // tenant, the worker survives (no restart), and the run exits clean
    // because rejection is not an error.
    let out = cli()
        .args([
            "serve",
            "--workers",
            "1",
            "--requests",
            "32",
            "--tenants",
            "4",
            "--tenant-policy",
            "quarantine:1",
            "--fault",
            "worker=0,kind=mpk,at=2",
            "--json",
        ])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for key in [
        "\"tenant_policy\":\"quarantine:1\"",
        "\"quarantined\":true",
        "\"workers_restarted\":0",
        "\"requests_served\":32",
    ] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
}

#[test]
fn serve_fault_injection_is_reported_and_dirties_the_run() {
    // An injected MPK violation completes the run (every request served)
    // but must exit dirty, with the injection visible in the JSON.
    let out = cli()
        .args([
            "serve",
            "--workers",
            "2",
            "--requests",
            "16",
            "--json",
            "--fault",
            "worker=1,kind=mpk,at=3",
        ])
        .output()
        .expect("run");
    assert!(!out.status.success(), "an injected MPK fault must exit dirty");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for key in ["\"requests_served\":16", "\"unexpected_faults\":1", "\"injected_faults\":1"] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
    assert!(String::from_utf8_lossy(&out.stderr).contains("unclean serve run"), "{out:?}");
}

#[test]
fn serve_audit_policy_survives_the_injection_and_exits_clean() {
    // Same injection as the dirty-run test above, but under `audit` the
    // violation is single-stepped and logged: every request is served,
    // the run stays clean, and the CLI exits 0.
    let out = cli()
        .args([
            "serve",
            "--workers",
            "1",
            "--requests",
            "8",
            "--json",
            "--fault",
            "worker=0,kind=mpk,at=3",
            "--mpk-policy",
            "audit",
        ])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for key in [
        "\"mpk_policy\":\"audit\"",
        "\"requests_served\":8",
        "\"requests_abandoned\":0",
        "\"unexpected_faults\":0",
        "\"injected_faults\":1",
        "\"violations_audited\":1",
        "\"audit_log\":[{\"worker\":0,",
    ] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
}

#[test]
fn serve_rejects_a_bad_mpk_policy() {
    let out = cli().args(["serve", "--mpk-policy", "lenient"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --mpk-policy"), "{out:?}");

    let out = cli().args(["serve", "--mpk-policy", "quarantine:0"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --mpk-policy"), "{out:?}");
}

#[test]
fn serve_pool_death_emits_partial_report_instead_of_hanging() {
    // Permanently broken single worker: the old runtime hung here; now
    // the CLI must exit with the pool-death diagnostic AND the partial
    // JSON report.
    let out = cli()
        .args([
            "serve",
            "--workers",
            "1",
            "--requests",
            "48",
            "--queue",
            "4",
            "--json",
            "--fault",
            "worker=0,kind=setup",
        ])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for key in ["\"requests_served\":0", "\"requests_abandoned\":48", "\"injected_faults\":"] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("pool died"), "{stderr}");
    assert!(stderr.contains("48 request(s) abandoned"), "{stderr}");
}

#[test]
fn serve_rejects_bad_flags() {
    let out = cli().args(["serve", "--workers"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--workers needs a number"), "{out:?}");

    let out = cli().args(["serve", "--bogus"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown serve option"), "{out:?}");

    let out = cli().args(["serve", "--workers", "0"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("at least one worker"), "{out:?}");

    let out = cli().args(["serve", "--fault", "worker=0,kind=frobnicate"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown fault kind"), "{out:?}");

    // A fault aimed past the pool is a config error, caught before serving.
    let out = cli()
        .args(["serve", "--workers", "2", "--fault", "worker=5,kind=panic,at=1"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("fault targets worker 5"), "{out:?}");
}

#[test]
fn annotate_emits_gated_module() {
    let dir = temp_dir("annotate");
    let program = demo_program(&dir);
    let out = cli().args(["annotate"]).arg(&program).output().expect("run");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("gate.enter.untrusted"), "{stdout}");
    assert!(stdout.contains("__pkru_gate_clib::bump"), "{stdout}");
}

#[test]
fn serve_overload_flags_shed_and_expose_the_new_counters() {
    let out = cli()
        .args([
            "serve",
            "--workers",
            "1",
            "--requests",
            "48",
            "--queue",
            "4",
            "--seed",
            "17",
            "--deadline-ticks",
            "3",
            "--admission",
            "0",
            "--latency",
            "--json",
        ])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for key in [
        "\"deadline_ticks\":3",
        "\"admission_wait_ms\":0",
        "\"requests_expired\":",
        "\"requests_rejected\":",
        "\"latency\":{\"count\":",
        "\"p99_ms\":",
    ] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
    // The extended accounting invariant, via the JSON the user sees.
    let field = |name: &str| -> u64 {
        stdout
            .split(&format!("\"{name}\":"))
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("missing {name} in {stdout}"))
    };
    assert_eq!(
        field("requests_served")
            + field("requests_abandoned")
            + field("requests_expired")
            + field("requests_rejected"),
        48,
        "{stdout}"
    );
}

#[test]
fn serve_stall_fault_is_survived_by_the_watchdog() {
    let out = cli()
        .args([
            "serve",
            "--workers",
            "1",
            "--requests",
            "10",
            "--fault",
            "worker=0,kind=stall,at=2",
            "--stall-timeout",
            "400",
        ])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("served 10 request(s)"), "{stdout}");
    assert!(stdout.contains("watchdog: 1 stall(s) condemned (deadline 400 ms)"), "{stdout}");
    assert!(stdout.contains("1 restart(s), 1 retried"), "{stdout}");
}

#[test]
fn serve_without_overload_flags_keeps_the_report_schema_unchanged() {
    // The compatibility pin, end to end through the CLI: a flag-free
    // serve must not leak any of the overload-era keys into its JSON.
    let out = cli()
        .args(["serve", "--workers", "2", "--requests", "24", "--seed", "3", "--json"])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for absent in [
        "deadline_ticks",
        "admission_wait_ms",
        "tenant_rate",
        "requests_expired",
        "requests_rejected",
        "workers_stalled",
        "latency",
        "requeued",
        "rate_limited",
    ] {
        assert!(!stdout.contains(absent), "overload key {absent} leaked into {stdout}");
    }
}
