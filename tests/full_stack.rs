//! Whole-system integration: browser + engine + pipeline + workloads.

use pkru_safe_repro::servolite::{Browser, BrowserConfig, SECRET_ADDR};
use pkru_safe_repro::workloads::{dromaeo, profile_for, run_benchmark, run_config};

const PAGE: &str = r#"
<div id="root">
  <p id="a">first</p>
  <p id="b">second</p>
</div>
"#;

#[test]
fn browser_survives_repeated_script_sessions_under_mpk() {
    let profile = {
        let mut p = Browser::new(BrowserConfig::Profiling).unwrap();
        p.load_html(PAGE).unwrap();
        p.eval_script(
            "var n = document.getElementById('a'); var s = n.tagName + n.innerText(); \
             var m = document.getElementById('b'); s += m.text;",
        )
        .unwrap();
        p.into_profile()
    };
    let mut browser = Browser::with_profile(BrowserConfig::Mpk, Some(&profile)).unwrap();
    browser.load_html(PAGE).unwrap();
    for i in 0..20 {
        let v = browser
            .eval_script(&format!(
                "var n = document.getElementById('a'); return n.tagName.length + {i};"
            ))
            .unwrap();
        assert!(matches!(v, pkru_safe_repro::minijs::Value::Num(n) if n == 1.0 + f64::from(i)));
    }
    // 20 evals = 40 transitions plus the earlier load.
    assert!(browser.stats().transitions >= 40);
}

#[test]
fn engine_cannot_forge_pkru_or_reach_gates() {
    // The threat model: PKRU values live in registers (the Cpu model),
    // unreachable from script. The only surface script has is memory — and
    // trusted memory faults. Scan a swath of the trusted region.
    let profile = {
        let mut p = Browser::new(BrowserConfig::Profiling).unwrap();
        p.load_html(PAGE).unwrap();
        p.eval_script("document.getElementById('a').tagName;").unwrap();
        p.into_profile()
    };
    let mut browser = Browser::with_profile(BrowserConfig::Mpk, Some(&profile)).unwrap();
    browser.load_html(PAGE).unwrap();
    let probe = format!(
        r#"
var a = [1.1];
a.length = 1e15;
var base = debugAddrOf(a);
var idx = ({SECRET_ADDR} - base) / 8;
var x = a[idx];   // read, not just write, must also be blocked
return x;
"#
    );
    let err = browser.eval_script(&probe).unwrap_err();
    assert!(err.is_pkey_violation(), "{err}");
}

#[test]
fn oob_within_untrusted_pool_is_not_blocked() {
    // MPK draws the line at the compartment boundary, not within M_U:
    // corrupting the engine's own heap is out of scope (§5.4 "memory
    // corruption of this type occurs within the shared region").
    let mut browser = Browser::new(BrowserConfig::Mpk).unwrap();
    browser.load_html(PAGE).unwrap();
    let v = browser
        .eval_script(
            r#"
var a = [1.1];
var b = [9.9];
a.length = 64;
var sum = 0;
for (var i = 0; i < 64; i++) {
  var x = a[i];
  if (typeof x == 'number') sum += 1;
}
return sum;
"#,
        )
        .unwrap();
    // The OOB reads inside M_U succeed (they may see b's data or heap
    // metadata) — no pkey violation.
    assert!(matches!(v, pkru_safe_repro::minijs::Value::Num(n) if n > 0.0));
}

#[test]
fn dromaeo_dom_slice_overhead_shape() {
    // The headline shape of Table 2: the dom sub-suite pays measurably
    // more than a compute benchmark under mpk, driven by transitions.
    let all = dromaeo();
    let dom: Vec<_> = all.iter().filter(|b| b.name == "dom-attr").cloned().collect();
    let js: Vec<_> = all.iter().filter(|b| b.name == "v8-richards").cloned().collect();
    let profile = profile_for(&dom).unwrap();
    let dom_mpk = run_config(BrowserConfig::Mpk, Some(&profile), &dom).unwrap();
    let js_profile = profile_for(&js).unwrap();
    let js_mpk = run_config(BrowserConfig::Mpk, Some(&js_profile), &js).unwrap();
    let dom_rate = dom_mpk.rows[0].transitions as f64 / dom_mpk.rows[0].seconds;
    let js_rate = js_mpk.rows[0].transitions as f64 / js_mpk.rows[0].seconds;
    assert!(dom_rate > 20.0 * js_rate, "dom transition rate {dom_rate:.0}/s vs js {js_rate:.0}/s");
}

#[test]
fn profiling_and_enforcement_agree_on_results() {
    // A benchmark computes the same checksum on the profiling build as on
    // the enforcement build (the instrumentation does not change program
    // behavior — §4.3.1 "no new allocation sites").
    let all = dromaeo();
    let b = all.iter().find(|b| b.name == "dom-query").unwrap();
    let profile = profile_for(std::slice::from_ref(b)).unwrap();
    let enforced = run_benchmark(BrowserConfig::Mpk, Some(&profile), b).unwrap();
    let baseline = run_benchmark(BrowserConfig::Base, None, b).unwrap();
    assert_eq!(enforced.checksum, baseline.checksum);
}

#[test]
fn secret_page_has_trusted_key_only_under_split_configs() {
    let mut base = Browser::new(BrowserConfig::Base).unwrap();
    assert_eq!(base.secret_value().unwrap(), 42.0);
    let mut mpk = Browser::new(BrowserConfig::Mpk).unwrap();
    assert_eq!(mpk.secret_value().unwrap(), 42.0);
    let key = {
        let space = mpk.machine.space.lock();
        space.page_pkey(SECRET_ADDR).unwrap()
    };
    assert_eq!(key, mpk.machine.trusted_pkey());
}
