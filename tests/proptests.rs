//! Property-based tests over the core data structures and invariants.

use std::collections::HashMap;

use proptest::prelude::*;

use pkru_safe_repro::mpk::{AccessKind, Pkey, Pkru};
use pkru_safe_repro::pkalloc::{BaselineAlloc, CompartmentAlloc, Domain, PkAlloc, UNTRUSTED_BASE};
use pkru_safe_repro::provenance::{AllocId, MetadataTable, Profile};
use pkru_safe_repro::vmem::{AddressSpace, Prot, SharedSpace, PAGE_SIZE};

fn pkey_strategy() -> impl Strategy<Value = Pkey> {
    (0u8..16).prop_map(|i| Pkey::new(i).expect("index in range"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- PKRU ----

    #[test]
    fn pkru_rights_roundtrip(bits in any::<u32>(), key in pkey_strategy()) {
        use pkru_safe_repro::mpk::PkeyRights;
        let pkru = Pkru::from_bits(bits);
        for rights in [PkeyRights::NoAccess, PkeyRights::ReadOnly, PkeyRights::ReadWrite] {
            let updated = pkru.with_rights(key, rights);
            prop_assert_eq!(updated.rights(key), rights);
            // Other keys are untouched.
            for other in 0..16u8 {
                let other = Pkey::new(other).expect("key");
                if other != key {
                    prop_assert_eq!(updated.rights(other), pkru.rights(other));
                }
            }
        }
    }

    #[test]
    fn pkru_deny_only_blocks_exactly_one(key in pkey_strategy()) {
        let pkru = Pkru::deny_only(key);
        for i in 0..16u8 {
            let k = Pkey::new(i).expect("key");
            let expected = k != key;
            prop_assert_eq!(pkru.allows(k, AccessKind::Read), expected);
            prop_assert_eq!(pkru.allows(k, AccessKind::Write), expected);
        }
    }

    // ---- vmem ----

    #[test]
    fn vmem_write_read_roundtrip(
        writes in proptest::collection::vec((0u64..(1 << 16), any::<u64>()), 1..40)
    ) {
        let mut space = AddressSpace::new();
        let base = space.mmap(1 << 16, Prot::READ_WRITE).expect("map");
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (off, value) in writes {
            let addr = base + (off & !7).min((1 << 16) - 8);
            space.write_u64(Pkru::ALL_ACCESS, addr, value).expect("write");
            model.insert(addr, value);
        }
        for (addr, value) in model {
            prop_assert_eq!(space.read_u64(Pkru::ALL_ACCESS, addr).expect("read"), value);
        }
    }

    #[test]
    fn vmem_pkey_partition_is_airtight(
        key_index in 1u8..16,
        probe in 0u64..(4 * PAGE_SIZE)
    ) {
        let mut space = AddressSpace::new();
        let base = space.mmap(4 * PAGE_SIZE, Prot::READ_WRITE).expect("map");
        let key = Pkey::new(key_index).expect("key");
        // Tag the middle two pages.
        space.pkey_mprotect(base + PAGE_SIZE, 2 * PAGE_SIZE, Prot::READ_WRITE, key)
            .expect("tag");
        let restricted = Pkru::deny_only(key);
        let addr = base + probe;
        let tagged = (PAGE_SIZE..3 * PAGE_SIZE).contains(&probe);
        let result = space.check(restricted, addr, 1, AccessKind::Read);
        prop_assert_eq!(result.is_err(), tagged);
    }

    #[test]
    fn vmem_mprotect_split_preserves_other_pages(
        split_at in 1u64..7,
        len in 1u64..3
    ) {
        let mut space = AddressSpace::new();
        let base = space.mmap(8 * PAGE_SIZE, Prot::READ_WRITE).expect("map");
        let len = len.min(8 - split_at);
        space.mprotect(base + split_at * PAGE_SIZE, len * PAGE_SIZE, Prot::READ).expect("protect");
        for page in 0..8u64 {
            let expected = if page >= split_at && page < split_at + len {
                Prot::READ
            } else {
                Prot::READ_WRITE
            };
            prop_assert_eq!(space.page_prot(base + page * PAGE_SIZE), Some(expected));
        }
    }

    // ---- allocators ----

    #[test]
    fn pkalloc_live_objects_never_overlap(
        ops in proptest::collection::vec((any::<bool>(), 1u64..5000, any::<bool>()), 1..60)
    ) {
        let space = SharedSpace::new();
        let mut alloc = PkAlloc::new(space, Pkey::new(1).expect("key")).expect("alloc");
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (untrusted, size, free_one) in ops {
            if free_one && !live.is_empty() {
                let (ptr, _) = live.swap_remove(0);
                alloc.dealloc(ptr).expect("free");
                continue;
            }
            let ptr = if untrusted {
                alloc.untrusted_alloc(size).expect("alloc")
            } else {
                alloc.alloc(size).expect("alloc")
            };
            let usable = alloc.usable_size(ptr).expect("usable");
            prop_assert!(usable >= size);
            for &(p, s) in &live {
                prop_assert!(ptr + usable <= p || ptr >= p + s,
                    "overlap: {:#x}+{} vs {:#x}+{}", ptr, usable, p, s);
            }
            // Pool placement matches the request.
            let expected = if untrusted { Domain::Untrusted } else { Domain::Trusted };
            prop_assert_eq!(alloc.domain_of(ptr), Some(expected));
            live.push((ptr, usable));
        }
    }

    #[test]
    fn pkalloc_realloc_preserves_data_and_pool(
        initial in 8u64..2000,
        grown in 8u64..20000,
        untrusted in any::<bool>()
    ) {
        let space = SharedSpace::new();
        let mut alloc = PkAlloc::new(space.clone(), Pkey::new(1).expect("key")).expect("alloc");
        let ptr = if untrusted {
            alloc.untrusted_alloc(initial).expect("alloc")
        } else {
            alloc.alloc(initial).expect("alloc")
        };
        let n = (initial / 8).max(1);
        for i in 0..n {
            space.lock().write_u64(Pkru::ALL_ACCESS, ptr + i * 8, i * 3 + 1).expect("write");
        }
        let new_ptr = alloc.realloc(ptr, grown).expect("realloc");
        let expected = if untrusted { Domain::Untrusted } else { Domain::Trusted };
        prop_assert_eq!(alloc.domain_of(new_ptr), Some(expected));
        let kept = n.min(grown / 8);
        for i in 0..kept {
            prop_assert_eq!(
                space.lock().read_u64(Pkru::ALL_ACCESS, new_ptr + i * 8).expect("read"),
                i * 3 + 1
            );
        }
    }

    #[test]
    fn untrusted_pool_never_issues_trusted_addresses(
        sizes in proptest::collection::vec(1u64..10000, 1..40)
    ) {
        let space = SharedSpace::new();
        let mut alloc = PkAlloc::new(space, Pkey::new(1).expect("key")).expect("alloc");
        for size in sizes {
            let p = alloc.untrusted_alloc(size).expect("alloc");
            prop_assert!(p >= UNTRUSTED_BASE);
            prop_assert_eq!(alloc.domain_of(p), Some(Domain::Untrusted));
        }
    }

    #[test]
    fn baseline_alloc_free_cycles(
        sizes in proptest::collection::vec(1u64..4096, 1..50)
    ) {
        let space = SharedSpace::new();
        let mut alloc = BaselineAlloc::new(space).expect("alloc");
        let mut ptrs = Vec::new();
        for &size in &sizes {
            ptrs.push(alloc.alloc(size).expect("alloc"));
        }
        for p in ptrs {
            alloc.dealloc(p).expect("free");
        }
        // The arena is internally consistent afterwards: a fresh round of
        // allocations still works.
        for &size in &sizes {
            prop_assert!(alloc.alloc(size).is_ok());
        }
    }

    // ---- provenance ----

    #[test]
    fn metadata_lookup_matches_linear_scan(
        objects in proptest::collection::vec((0u64..1000, 1u64..64), 1..30),
        probe in 0u64..70000
    ) {
        let mut table = MetadataTable::new();
        let mut model: Vec<(u64, u64, AllocId)> = Vec::new();
        let mut cursor = 0x1000u64;
        for (i, (gap, size)) in objects.into_iter().enumerate() {
            cursor += gap;
            let id = AllocId::new(i as u32, 0, 0);
            table.log_alloc(cursor, size, id);
            model.push((cursor, size, id));
            cursor += size;
        }
        let addr = 0x1000 + probe;
        let expected = model.iter().find(|(base, size, _)| addr >= *base && addr < base + size);
        match (table.lookup(addr), expected) {
            (Some(record), Some((base, _, id))) => {
                prop_assert_eq!(record.addr, *base);
                prop_assert_eq!(record.id, *id);
            }
            (None, None) => {}
            (got, want) => prop_assert!(false, "lookup {:?} vs model {:?}", got, want),
        }
    }

    #[test]
    fn profile_json_roundtrip(ids in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 0..50)) {
        let mut profile = Profile::new();
        for (f, b, s) in ids {
            profile.record(AllocId::new(f, b, s));
        }
        let back = Profile::from_json(&profile.to_json()).expect("parse");
        prop_assert_eq!(profile, back);
    }
}

// ---- static analysis vs the pipeline ----

/// Renders a random but well-formed source module: some untrusted
/// functions (readers or writers), optionally a trusted helper returning a
/// fresh allocation, and a `@main` that allocates, stores, and hands a
/// drawn subset of its pointers to the untrusted side — optionally with
/// one call behind a branch so a profiling run can miss it.
fn gen_lir_program(
    writers: &[bool],
    allocs: &[(u64, bool, usize)],
    use_helper: bool,
    branch: bool,
) -> String {
    use std::fmt::Write as _;
    let n_u = writers.len();
    let mut text = String::new();
    for (i, writer) in writers.iter().enumerate() {
        if *writer {
            writeln!(
                text,
                "untrusted fn @u::f{i}(1) {{\nbb0:\n  %1 = load %0, 0\n  %2 = add %1, 1\n  \
                 store %0, 0, %2\n  ret %2\n}}"
            )
            .unwrap();
        } else {
            writeln!(text, "untrusted fn @u::f{i}(1) {{\nbb0:\n  %1 = load %0, 0\n  ret %1\n}}")
                .unwrap();
        }
    }
    if use_helper {
        writeln!(text, "fn @dom::mk(0) {{\nbb0:\n  %0 = alloc 24\n  ret %0\n}}").unwrap();
    }
    writeln!(text, "fn @main(1) {{\nbb0:").unwrap();
    let mut reg = 1u32;
    writeln!(text, "  %{reg} = const 7").unwrap();
    let val = reg;
    let mut ptrs: Vec<(u32, bool, usize)> = Vec::new();
    for (size, escapes, target) in allocs {
        reg += 1;
        writeln!(text, "  %{reg} = alloc {}", size * 8).unwrap();
        writeln!(text, "  store %{reg}, 0, %{val}").unwrap();
        ptrs.push((reg, *escapes, target % n_u));
    }
    if use_helper {
        reg += 1;
        writeln!(text, "  %{reg} = call @dom::mk()").unwrap();
        writeln!(text, "  store %{reg}, 0, %{val}").unwrap();
        ptrs.push((reg, true, 0));
    }
    let escaping: Vec<(u32, usize)> = ptrs.iter().filter(|p| p.1).map(|p| (p.0, p.2)).collect();
    let (hot, cold) = if branch && !escaping.is_empty() {
        (&escaping[..escaping.len() - 1], escaping.last().copied())
    } else {
        (&escaping[..], None)
    };
    for (ptr, f) in hot {
        reg += 1;
        writeln!(text, "  %{reg} = call @u::f{f}(%{ptr})").unwrap();
    }
    match cold {
        Some((ptr, f)) => {
            writeln!(text, "  brif %0, bb1, bb2").unwrap();
            reg += 1;
            writeln!(text, "bb1:\n  %{reg} = call @u::f{f}(%{ptr})\n  br bb2").unwrap();
            writeln!(text, "bb2:\n  ret %{val}\n}}").unwrap();
        }
        None => writeln!(text, "  ret %{val}\n}}").unwrap(),
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Stage 1 is gate-correct by construction: the lint must accept every
    // module `expand_annotations` emits, with or without profiling hooks.
    #[test]
    fn lint_accepts_expand_annotations_output(
        writers in proptest::collection::vec(any::<bool>(), 1..3),
        allocs in proptest::collection::vec((1u64..8, any::<bool>(), 0usize..4), 1..4),
        use_helper in any::<bool>(),
        branch in any::<bool>(),
    ) {
        use pkru_safe_repro::core_pipeline::{Annotations, Pipeline};

        let text = gen_lir_program(&writers, &allocs, use_helper, branch);
        let module = pkru_safe_repro::lir::parse_module(&text).expect("generated module parses");
        let pipeline = Pipeline::new(module, Annotations::new());

        let annotated = pipeline.annotated_build().expect("annotate");
        let lint = pkru_safe_repro::analysis::lint_module(&annotated);
        prop_assert!(lint.is_ok(), "lint rejected stage 1: {:?}\n{}", lint, annotated.dump());

        let profiling = pipeline.profiling_build().expect("profiling build");
        let lint = pkru_safe_repro::analysis::lint_module(&profiling);
        prop_assert!(lint.is_ok(), "lint rejected profiling build: {:?}\n{}", lint, profiling.dump());
    }

    // The adversarial scan must be a no-false-positive gate for the
    // compiler's own output: every stage-1 module (and its profiling
    // sibling) scans clean, so wiring the scan into CI can never block a
    // legitimate build.
    #[test]
    fn scan_accepts_expand_annotations_output(
        writers in proptest::collection::vec(any::<bool>(), 1..3),
        allocs in proptest::collection::vec((1u64..8, any::<bool>(), 0usize..4), 1..4),
        use_helper in any::<bool>(),
        branch in any::<bool>(),
    ) {
        use pkru_safe_repro::core_pipeline::{Annotations, Pipeline};

        let text = gen_lir_program(&writers, &allocs, use_helper, branch);
        let module = pkru_safe_repro::lir::parse_module(&text).expect("generated module parses");
        let pipeline = Pipeline::new(module, Annotations::new());

        let annotated = pipeline.annotated_build().expect("annotate");
        let findings = pkru_safe_repro::analysis::scan_module(&annotated);
        prop_assert!(findings.is_empty(), "scan rejected stage 1: {:?}\n{}", findings, annotated.dump());

        let profiling = pipeline.profiling_build().expect("profiling build");
        let findings = pkru_safe_repro::analysis::scan_module(&profiling);
        prop_assert!(findings.is_empty(), "scan rejected profiling build: {:?}\n{}", findings, profiling.dump());
    }

    // Soundness: whatever the interpreter observes crossing the boundary,
    // the static escape analysis must have predicted.
    #[test]
    fn dynamic_profile_within_static_may_escape(
        writers in proptest::collection::vec(any::<bool>(), 1..3),
        allocs in proptest::collection::vec((1u64..8, any::<bool>(), 0usize..4), 1..4),
        use_helper in any::<bool>(),
        branch in any::<bool>(),
        arg in 0i64..2,
    ) {
        use pkru_safe_repro::core_pipeline::{run_profiling, Annotations, Pipeline, ProfileInput};

        let text = gen_lir_program(&writers, &allocs, use_helper, branch);
        let module = pkru_safe_repro::lir::parse_module(&text).expect("generated module parses");
        let pipeline = Pipeline::new(module, Annotations::new());

        let static_profile = pipeline.static_analysis().expect("analysis").static_profile();
        let profiling = pipeline.profiling_build().expect("profiling build");
        let dynamic = run_profiling(&profiling, &[ProfileInput::new("main", &[arg])])
            .expect("profiling run");
        let sound = pkru_safe_repro::analysis::check_profile_soundness(&static_profile, &dynamic);
        prop_assert!(
            sound.is_ok(),
            "dynamic sites missing from static may-escape: {:?}\nprogram:\n{}",
            sound,
            text
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    // The red-team contract: every generated Garmr-shaped attack is
    // rejected by the adversarial scan or stopped at run time (MPK fault,
    // syscall filter, gate integrity, or the quarantine breaker). 200
    // seeds cycle through all six attack families.
    #[test]
    fn every_redteam_attack_is_caught(seed in any::<u64>()) {
        use pkru_safe_repro::analysis::redteam::{generate_any, vet};

        let attack = generate_any(seed);
        let catch = vet(&attack.module());
        prop_assert!(
            catch.caught(),
            "attack {} (seed {}) escaped both layers:\n{}",
            attack.kind.label(),
            attack.seed,
            attack.text
        );
    }
}
