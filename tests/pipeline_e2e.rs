//! Cross-crate integration: the four-stage pipeline end to end on LIR
//! programs (artifact experiment E1).

use pkru_safe_repro::core_pipeline::{passes, Annotations, Pipeline, ProfileInput};
use pkru_safe_repro::lir::{parse_module, FaultPolicy, Interp, Machine, Trap};
use pkru_safe_repro::provenance::Profile;

const PROGRAM: &str = r#"
untrusted fn @clib::sum(2) {
bb0:
  %2 = const 0
  %3 = const 0
  br bb1
bb1:
  %4 = lt %3, %1
  brif %4, bb2, bb3
bb2:
  %5 = mul %3, 8
  %6 = add %0, %5
  %7 = load %6, 0
  %2 = add %2, %7
  %3 = add %3, 1
  br bb1
bb3:
  ret %2
}
fn @main(0) {
bb0:
  %0 = alloc 80
  %1 = const 0
  br bb1
bb1:
  %2 = lt %1, 10
  brif %2, bb2, bb3
bb2:
  %3 = mul %1, 8
  %4 = add %0, %3
  store %4, 0, %1
  %1 = add %1, 1
  br bb1
bb3:
  %5 = call @clib::sum(%0, 10)
  print %5
  ret %5
}
"#;

#[test]
fn pipeline_produces_working_partitioned_program() {
    let app = Pipeline::new(parse_module(PROGRAM).unwrap(), Annotations::new())
        .with_input(ProfileInput::new("main", &[]))
        .build()
        .unwrap();
    assert_eq!(app.census.shared_sites, 1);
    let (result, machine) = app.run("main", &[]);
    assert_eq!(result.unwrap(), Some(45));
    assert_eq!(machine.output, vec![45]);
    assert_eq!(machine.gates.transitions(), 2);
}

#[test]
fn unprofiled_enforcement_crashes_at_the_boundary() {
    let pipeline = Pipeline::new(parse_module(PROGRAM).unwrap(), Annotations::new());
    let mut module = pipeline.annotated_build().unwrap();
    passes::apply_profile(&mut module, &Profile::new());
    let mut machine = Machine::split(FaultPolicy::Crash).unwrap();
    match Interp::new(&module, &mut machine).run("main", &[]) {
        Err(Trap::Fault(f)) => assert!(f.is_pkey_violation()),
        other => panic!("expected pkey fault, got {other:?}"),
    }
}

#[test]
fn profile_transfers_between_programs_with_same_structure() {
    // The profile recorded on one build applies to a recompiled module
    // with identical site structure — the stability AllocIds guarantee.
    let p1 = Pipeline::new(parse_module(PROGRAM).unwrap(), Annotations::new());
    let profiling = p1.profiling_build().unwrap();
    let profile = pkru_safe_repro::core_pipeline::run_profiling(
        &profiling,
        &[ProfileInput::new("main", &[])],
    )
    .unwrap();

    let p2 = Pipeline::new(parse_module(PROGRAM).unwrap(), Annotations::new());
    let mut module = p2.annotated_build().unwrap();
    let moved = passes::apply_profile(&mut module, &profile);
    assert_eq!(moved, 1);
    let mut machine = Machine::split(FaultPolicy::Crash).unwrap();
    assert_eq!(Interp::new(&module, &mut machine).run("main", &[]).unwrap(), Some(45));
}

#[test]
fn callbacks_from_untrusted_code_reenter_trusted_compartment() {
    let source = r#"
untrusted fn @clib::apply(2) {
bb0:
  %2 = icall %0(%1)
  ret %2
}
export fn @app::triple(1) {
bb0:
  %1 = mul %0, 3
  ret %1
}
fn @main(0) {
bb0:
  %0 = addr @app::triple
  %1 = call @clib::apply(%0, 14)
  ret %1
}
"#;
    let app = Pipeline::new(parse_module(source).unwrap(), Annotations::new())
        .with_input(ProfileInput::new("main", &[]))
        .build()
        .unwrap();
    let (result, machine) = app.run("main", &[]);
    assert_eq!(result.unwrap(), Some(42));
    // main->clib (2) plus clib->app::triple trusted entry (2).
    assert_eq!(machine.gates.transitions(), 4);
    assert_eq!(machine.gates.max_depth(), 2);
}

#[test]
fn realloc_keeps_provenance_and_pool() {
    // An object reallocated before crossing the boundary must still be
    // discovered (provenance survives realloc) and placed in M_U.
    let source = r#"
untrusted fn @clib::peek(1) {
bb0:
  %1 = load %0, 0
  ret %1
}
fn @main(0) {
bb0:
  %0 = alloc 16
  store %0, 0, 99
  %1 = realloc %0, 4096
  %2 = call @clib::peek(%1)
  ret %2
}
"#;
    let app = Pipeline::new(parse_module(source).unwrap(), Annotations::new())
        .with_input(ProfileInput::new("main", &[]))
        .build()
        .unwrap();
    assert_eq!(app.census.shared_sites, 1);
    let (result, _machine) = app.run("main", &[]);
    assert_eq!(result.unwrap(), Some(99));
}

#[test]
fn two_sites_one_shared_one_private() {
    // Fine-grained partitioning: same size class, different fates.
    let source = r#"
untrusted fn @clib::peek(1) {
bb0:
  %1 = load %0, 0
  ret %1
}
fn @main(0) {
bb0:
  %0 = alloc 64
  %1 = alloc 64
  store %0, 0, 7
  store %1, 0, 8
  %2 = call @clib::peek(%0)
  %3 = load %1, 0
  %4 = add %2, %3
  ret %4
}
"#;
    let app = Pipeline::new(parse_module(source).unwrap(), Annotations::new())
        .with_input(ProfileInput::new("main", &[]))
        .build()
        .unwrap();
    assert_eq!(app.census.total_sites, 2);
    assert_eq!(app.census.shared_sites, 1);
    let (result, _machine) = app.run("main", &[]);
    assert_eq!(result.unwrap(), Some(15));
}
