//! The checked-in red-team corpus: six hand-written Garmr-shaped attack
//! programs under `tests/corpus/`, each annotated with the defense that
//! must stop it (`; expect: SCAN001 ...` for the adversarial scan,
//! `; expect: dynamic` for a runtime-only catch). The harness runs every
//! file through [`pkru_analysis::redteam::vet`] — the same
//! scan-then-execute gauntlet the CI chaos job applies — and asserts the
//! expected codes appear. An attack slipping through both layers fails
//! the suite.

use std::path::PathBuf;

use lir::{parse_module, verify_module, Module};
use pkru_analysis::redteam::{vet, Catch};
use pkru_analysis::scan_module;

/// Loads every corpus program with its `; expect:` tokens.
fn corpus() -> Vec<(String, Vec<String>, Module)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "lir"))
        .collect();
    entries.sort();
    assert!(entries.len() >= 6, "corpus shrank: {entries:?}");
    entries
        .into_iter()
        .map(|path| {
            let name = path.file_stem().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).unwrap();
            let expect: Vec<String> = text
                .lines()
                .filter_map(|l| l.trim().strip_prefix("; expect:"))
                .flat_map(|l| l.split_whitespace())
                .map(str::to_string)
                .collect();
            assert!(!expect.is_empty(), "{name}: missing `; expect:` header");
            let module =
                parse_module(&text).unwrap_or_else(|e| panic!("{name} does not parse: {e}"));
            verify_module(&module).unwrap_or_else(|e| panic!("{name} does not verify: {e:?}"));
            (name, expect, module)
        })
        .collect()
}

#[test]
fn every_corpus_attack_is_caught_as_annotated() {
    for (name, expect, module) in corpus() {
        let catch = vet(&module);
        if expect.iter().any(|t| t == "dynamic") {
            // Runtime-only attacks must be invisible to the scan (that is
            // the point of checking them in) and stopped dynamically.
            assert!(scan_module(&module).is_empty(), "{name}: expected a static-clean module");
            assert!(
                matches!(catch, Catch::Dynamic(_)),
                "{name}: expected a dynamic catch, got {catch:?}"
            );
        } else {
            match &catch {
                Catch::Static(findings) => {
                    for code in &expect {
                        assert!(
                            findings.iter().any(|f| f.kind.code() == code),
                            "{name}: expected {code} among {findings:?}"
                        );
                    }
                }
                other => panic!("{name}: expected a static catch, got {other:?}"),
            }
        }
    }
}

#[test]
fn corpus_findings_carry_reachability_witnesses() {
    // Findings inside attacker-reachable code must explain *how* the
    // attacker gets there, not just where the gadget sits. (gate_reentry's
    // findings live in trusted @main, which no untrusted entry reaches —
    // its witnesses are legitimately empty.)
    for (name, _, module) in corpus() {
        let untrusted: Vec<&str> = module
            .functions
            .iter()
            .filter(|f| f.attrs.untrusted)
            .map(|f| f.name.as_str())
            .collect();
        for finding in scan_module(&module) {
            if untrusted.contains(&finding.func.as_str()) {
                assert!(
                    !finding.witness.is_empty(),
                    "{name}: finding in untrusted @{} lacks a witness",
                    finding.func
                );
            }
        }
    }

    // And the indirect-gadget file specifically proves the interprocedural
    // walk: its SCAN001 sits in a trusted helper, reached through an icall
    // from the untrusted dispatcher.
    let (_, _, module) = corpus()
        .into_iter()
        .find(|(name, _, _)| name == "indirect_gadget")
        .expect("indirect_gadget.lir present");
    let findings = scan_module(&module);
    assert!(
        findings.iter().any(|f| f.func == "callback_table_entry"
            && f.witness == ["evil::dispatch", "callback_table_entry"]),
        "{findings:?}"
    );
}
